// Unit tests for ckr_framework: bit I/O, Golomb coding, quantized stores,
// TID table, and the runtime ranker.
#include <gtest/gtest.h>

#include <cmath>

#include "framework/bitstream.h"
#include "framework/golomb.h"
#include "framework/runtime_ranker.h"

namespace ckr {
namespace {

TEST(BitstreamTest, BitRoundTrip) {
  BitWriter w;
  w.WriteBit(true);
  w.WriteBit(false);
  w.WriteBits(0b10110, 5);
  w.WriteUnary(3);
  auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_TRUE(r.ReadBit());
  EXPECT_FALSE(r.ReadBit());
  EXPECT_EQ(r.ReadBits(5), 0b10110u);
  EXPECT_EQ(r.ReadUnary(), 3u);
  EXPECT_FALSE(r.overflow());
}

TEST(BitstreamTest, OverflowDetected) {
  BitWriter w;
  w.WriteBits(0xff, 8);
  auto bytes = w.Finish();
  BitReader r(bytes);
  r.ReadBits(8);
  r.ReadBit();
  EXPECT_TRUE(r.overflow());
}

TEST(BitstreamTest, LargeValues) {
  BitWriter w;
  w.WriteBits(0xdeadbeefcafebabeULL, 64);
  auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(64), 0xdeadbeefcafebabeULL);
}

TEST(GolombTest, EncodeDecodeSingleValues) {
  for (uint64_t m : {1ull, 2ull, 3ull, 5ull, 8ull, 13ull, 100ull}) {
    for (uint64_t v : {0ull, 1ull, 2ull, 7ull, 63ull, 1000ull}) {
      BitWriter w;
      GolombEncode(v, m, &w);
      auto bytes = w.Finish();
      BitReader r(bytes);
      EXPECT_EQ(GolombDecode(m, &r), v) << "m=" << m << " v=" << v;
    }
  }
}

TEST(GolombTest, OptimalParameterRule) {
  EXPECT_EQ(OptimalGolombParameter(0.5), 1u);
  EXPECT_EQ(OptimalGolombParameter(1.0), 1u);
  EXPECT_EQ(OptimalGolombParameter(10.0), 7u);   // ceil(6.9)
  EXPECT_EQ(OptimalGolombParameter(100.0), 69u);
}

TEST(GolombTest, SortedIdsRoundTrip) {
  std::vector<uint32_t> ids = {3, 7, 8, 100, 1024, 4000, 4001, 99999};
  auto encoded = EncodeSortedIds(ids, 1u << 22);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeSortedIds(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, ids);
}

TEST(GolombTest, EmptyList) {
  auto encoded = EncodeSortedIds({}, 100);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeSortedIds(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(GolombTest, RejectsUnsortedAndOutOfRange) {
  EXPECT_FALSE(EncodeSortedIds({5, 4}, 100).ok());
  EXPECT_FALSE(EncodeSortedIds({5, 5}, 100).ok());
  EXPECT_FALSE(EncodeSortedIds({5, 200}, 100).ok());
}

TEST(GolombTest, CompressesDenseLists) {
  // 100 ids in a 4M universe: raw = 400 bytes; Golomb should beat it.
  std::vector<uint32_t> ids;
  Rng rng(5);
  uint32_t cur = 0;
  for (int i = 0; i < 100; ++i) {
    cur += 1 + static_cast<uint32_t>(rng.NextBounded(60000));
    ids.push_back(cur);
  }
  auto encoded = EncodeSortedIds(ids, 1u << 22);
  ASSERT_TRUE(encoded.ok());
  EXPECT_LT(encoded->size(), ids.size() * sizeof(uint32_t));
  auto decoded = DecodeSortedIds(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, ids);
}

TEST(GolombTest, RandomizedRoundTripProperty) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.NextBounded(200);
    std::vector<uint32_t> ids;
    uint32_t cur = 0;
    for (size_t i = 0; i < n; ++i) {
      cur += 1 + static_cast<uint32_t>(rng.NextBounded(1000));
      ids.push_back(cur);
    }
    auto encoded = EncodeSortedIds(ids, cur + 1);
    ASSERT_TRUE(encoded.ok());
    auto decoded = DecodeSortedIds(*encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, ids);
  }
}

TEST(TidTableTest, InternAndLookup) {
  GlobalTidTable tids;
  uint32_t a = tids.Intern("alpha");
  uint32_t b = tids.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(tids.Intern("alpha"), a);  // Idempotent.
  EXPECT_EQ(tids.Lookup("alpha"), a);
  EXPECT_EQ(tids.Lookup("gamma"), GlobalTidTable::kMaxTid);
  EXPECT_EQ(tids.size(), 2u);
  EXPECT_FALSE(tids.overflowed());
  EXPECT_LE(a, GlobalTidTable::kMaxTid);
}

TEST(QuantizedStoreTest, RoundTripWithinGranularity) {
  QuantizedInterestingnessStore store;
  InterestingnessVector v;
  v.freq_exact = 5.5;
  v.freq_phrase_contained = 7.25;
  v.unit_score = 0.42;
  v.searchengine_phrase = 3.0;
  v.concept_size = 2;
  v.number_of_chars = 17;
  v.subconcepts = 1;
  v.wiki_word_count = 6.2;
  v.high_level_type[2] = 1.0;
  store.Add("concept a", v);
  InterestingnessVector w;  // A second vector to span the ranges.
  w.freq_exact = 0.0;
  w.unit_score = 1.0;
  store.Add("concept b", w);
  store.Finalize();

  std::vector<double> out;
  ASSERT_TRUE(store.Lookup("concept a", &out));
  std::vector<double> raw = v.Flatten();
  ASSERT_EQ(out.size(), raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    // 16-bit quantization over the observed range: tiny error.
    EXPECT_NEAR(out[i], raw[i], 1e-3) << i;
  }
  EXPECT_FALSE(store.Lookup("missing", &out));
  EXPECT_EQ(store.PayloadBytes(),
            2 * InterestingnessVector::Dim() * sizeof(uint16_t));
}

TEST(PackedRelevanceTest, ScoreMatchesUnpackedWithinQuantization) {
  GlobalTidTable tids;
  PackedRelevanceStore store(&tids);
  std::vector<RelevantTerm> terms = {
      {"alpha", 40.0}, {"beta", 25.0}, {"gamma", 10.0}, {"delta", 2.0}};
  store.Add("my concept", terms);
  store.Finalize();

  std::unordered_set<uint32_t> context = {tids.Lookup("alpha"),
                                          tids.Lookup("gamma")};
  double score = store.Score("my concept", context);
  EXPECT_NEAR(score, 50.0, 0.1);  // 10-bit quantization error bound.
  EXPECT_DOUBLE_EQ(store.Score("unknown", context), 0.0);
  EXPECT_DOUBLE_EQ(store.Score("my concept", {}), 0.0);
}

TEST(PackedRelevanceTest, KeepsAtMostHundredTerms) {
  GlobalTidTable tids;
  PackedRelevanceStore store(&tids);
  std::vector<RelevantTerm> terms;
  for (int i = 0; i < 150; ++i) {
    terms.push_back({"t" + std::to_string(i), 150.0 - i});
  }
  store.Add("big", terms);
  store.Finalize();
  // 100 pairs * 4 bytes.
  EXPECT_EQ(store.PayloadBytes(), 400u);
}

TEST(PackedRelevanceTest, GolombCompressionSavesSpace) {
  GlobalTidTable tids;
  PackedRelevanceStore store(&tids);
  for (int c = 0; c < 50; ++c) {
    std::vector<RelevantTerm> terms;
    for (int i = 0; i < 100; ++i) {
      // Heavy term sharing across concepts => dense TID space.
      terms.push_back({"shared" + std::to_string((c * 37 + i) % 600),
                       1.0 + i});
    }
    store.Add("concept " + std::to_string(c), terms);
  }
  store.Finalize();
  EXPECT_LT(store.GolombCompressedBytes(), store.PayloadBytes());
}

TEST(RuntimeStatsTest, ThroughputMath) {
  RuntimeStats stats;
  stats.bytes_processed = 10'000'000;
  stats.stemmer_seconds = 2.0;
  stats.ranker_seconds = 4.0;
  EXPECT_DOUBLE_EQ(stats.StemmerMBps(), 5.0);
  EXPECT_DOUBLE_EQ(stats.RankerMBps(), 2.5);
  RuntimeStats zero;
  EXPECT_DOUBLE_EQ(zero.StemmerMBps(), 0.0);
}

}  // namespace
}  // namespace ckr
