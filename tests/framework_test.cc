// Unit tests for ckr_framework: bit I/O, Golomb coding, quantized stores,
// TID table, and the runtime ranker.
#include <gtest/gtest.h>

#include <cmath>

#include "framework/bitstream.h"
#include "framework/golomb.h"
#include "framework/runtime_ranker.h"

namespace ckr {
namespace {

TEST(BitstreamTest, BitRoundTrip) {
  BitWriter w;
  w.WriteBit(true);
  w.WriteBit(false);
  w.WriteBits(0b10110, 5);
  w.WriteUnary(3);
  auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_TRUE(r.ReadBit());
  EXPECT_FALSE(r.ReadBit());
  EXPECT_EQ(r.ReadBits(5), 0b10110u);
  EXPECT_EQ(r.ReadUnary(), 3u);
  EXPECT_FALSE(r.overflow());
}

TEST(BitstreamTest, OverflowDetected) {
  BitWriter w;
  w.WriteBits(0xff, 8);
  auto bytes = w.Finish();
  BitReader r(bytes);
  r.ReadBits(8);
  r.ReadBit();
  EXPECT_TRUE(r.overflow());
}

TEST(BitstreamTest, LargeValues) {
  BitWriter w;
  w.WriteBits(0xdeadbeefcafebabeULL, 64);
  auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(64), 0xdeadbeefcafebabeULL);
}

TEST(GolombTest, EncodeDecodeSingleValues) {
  for (uint64_t m : {1ull, 2ull, 3ull, 5ull, 8ull, 13ull, 100ull}) {
    for (uint64_t v : {0ull, 1ull, 2ull, 7ull, 63ull, 1000ull}) {
      BitWriter w;
      GolombEncode(v, m, &w);
      auto bytes = w.Finish();
      BitReader r(bytes);
      EXPECT_EQ(GolombDecode(m, &r), v) << "m=" << m << " v=" << v;
    }
  }
}

TEST(GolombTest, OptimalParameterRule) {
  EXPECT_EQ(OptimalGolombParameter(0.5), 1u);
  EXPECT_EQ(OptimalGolombParameter(1.0), 1u);
  EXPECT_EQ(OptimalGolombParameter(10.0), 7u);   // ceil(6.9)
  EXPECT_EQ(OptimalGolombParameter(100.0), 69u);
}

TEST(GolombTest, SortedIdsRoundTrip) {
  std::vector<uint32_t> ids = {3, 7, 8, 100, 1024, 4000, 4001, 99999};
  auto encoded = EncodeSortedIds(ids, 1u << 22);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeSortedIds(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, ids);
}

TEST(GolombTest, EmptyList) {
  auto encoded = EncodeSortedIds({}, 100);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeSortedIds(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(GolombTest, RejectsUnsortedAndOutOfRange) {
  EXPECT_FALSE(EncodeSortedIds({5, 4}, 100).ok());
  EXPECT_FALSE(EncodeSortedIds({5, 5}, 100).ok());
  EXPECT_FALSE(EncodeSortedIds({5, 200}, 100).ok());
}

TEST(GolombTest, CompressesDenseLists) {
  // 100 ids in a 4M universe: raw = 400 bytes; Golomb should beat it.
  std::vector<uint32_t> ids;
  Rng rng(5);
  uint32_t cur = 0;
  for (int i = 0; i < 100; ++i) {
    cur += 1 + static_cast<uint32_t>(rng.NextBounded(60000));
    ids.push_back(cur);
  }
  auto encoded = EncodeSortedIds(ids, 1u << 22);
  ASSERT_TRUE(encoded.ok());
  EXPECT_LT(encoded->size(), ids.size() * sizeof(uint32_t));
  auto decoded = DecodeSortedIds(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, ids);
}

TEST(GolombTest, RandomizedRoundTripProperty) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.NextBounded(200);
    std::vector<uint32_t> ids;
    uint32_t cur = 0;
    for (size_t i = 0; i < n; ++i) {
      cur += 1 + static_cast<uint32_t>(rng.NextBounded(1000));
      ids.push_back(cur);
    }
    auto encoded = EncodeSortedIds(ids, cur + 1);
    ASSERT_TRUE(encoded.ok());
    auto decoded = DecodeSortedIds(*encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, ids);
  }
}

TEST(TidTableTest, InternAndLookup) {
  GlobalTidTable tids;
  uint32_t a = tids.Intern("alpha");
  uint32_t b = tids.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(tids.Intern("alpha"), a);  // Idempotent.
  EXPECT_EQ(tids.Lookup("alpha"), a);
  EXPECT_EQ(tids.Lookup("gamma"), GlobalTidTable::kMaxTid);
  EXPECT_EQ(tids.size(), 2u);
  EXPECT_FALSE(tids.overflowed());
  EXPECT_LE(a, GlobalTidTable::kMaxTid);
}

TEST(QuantizedStoreTest, RoundTripWithinGranularity) {
  QuantizedInterestingnessStore store;
  InterestingnessVector v;
  v.freq_exact = 5.5;
  v.freq_phrase_contained = 7.25;
  v.unit_score = 0.42;
  v.searchengine_phrase = 3.0;
  v.concept_size = 2;
  v.number_of_chars = 17;
  v.subconcepts = 1;
  v.wiki_word_count = 6.2;
  v.high_level_type[2] = 1.0;
  store.Add("concept a", v);
  InterestingnessVector w;  // A second vector to span the ranges.
  w.freq_exact = 0.0;
  w.unit_score = 1.0;
  store.Add("concept b", w);
  store.Finalize();

  std::vector<double> out;
  ASSERT_TRUE(store.Lookup("concept a", &out));
  std::vector<double> raw = v.Flatten();
  ASSERT_EQ(out.size(), raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    // 16-bit quantization over the observed range: tiny error.
    EXPECT_NEAR(out[i], raw[i], 1e-3) << i;
  }
  EXPECT_FALSE(store.Lookup("missing", &out));
  EXPECT_EQ(store.PayloadBytes(),
            2 * InterestingnessVector::Dim() * sizeof(uint16_t));
}

TEST(PackedRelevanceTest, ScoreMatchesUnpackedWithinQuantization) {
  GlobalTidTable tids;
  PackedRelevanceStore store(&tids);
  std::vector<RelevantTerm> terms = {
      {"alpha", 40.0}, {"beta", 25.0}, {"gamma", 10.0}, {"delta", 2.0}};
  store.Add("my concept", terms);
  store.Finalize();

  std::unordered_set<uint32_t> context = {tids.Lookup("alpha"),
                                          tids.Lookup("gamma")};
  double score = store.Score("my concept", context);
  EXPECT_NEAR(score, 50.0, 0.1);  // 10-bit quantization error bound.
  EXPECT_DOUBLE_EQ(store.Score("unknown", context), 0.0);
  EXPECT_DOUBLE_EQ(store.Score("my concept", {}), 0.0);
}

TEST(PackedRelevanceTest, KeepsAtMostHundredTerms) {
  GlobalTidTable tids;
  PackedRelevanceStore store(&tids);
  std::vector<RelevantTerm> terms;
  for (int i = 0; i < 150; ++i) {
    terms.push_back({"t" + std::to_string(i), 150.0 - i});
  }
  store.Add("big", terms);
  store.Finalize();
  // 100 pairs * 4 bytes.
  EXPECT_EQ(store.PayloadBytes(), 400u);
}

TEST(PackedRelevanceTest, GolombCompressionSavesSpace) {
  GlobalTidTable tids;
  PackedRelevanceStore store(&tids);
  for (int c = 0; c < 50; ++c) {
    std::vector<RelevantTerm> terms;
    for (int i = 0; i < 100; ++i) {
      // Heavy term sharing across concepts => dense TID space.
      terms.push_back({"shared" + std::to_string((c * 37 + i) % 600),
                       1.0 + i});
    }
    store.Add("concept " + std::to_string(c), terms);
  }
  store.Finalize();
  EXPECT_LT(store.GolombCompressedBytes(), store.PayloadBytes());
}

TEST(RuntimeStatsTest, ThroughputMath) {
  RuntimeStats stats;
  stats.bytes_processed = 10'000'000;
  stats.stemmer_seconds = 2.0;
  stats.ranker_seconds = 4.0;
  EXPECT_DOUBLE_EQ(stats.StemmerMBps(), 5.0);
  EXPECT_DOUBLE_EQ(stats.RankerMBps(), 2.5);
  RuntimeStats zero;
  EXPECT_DOUBLE_EQ(zero.StemmerMBps(), 0.0);
}

TEST(RuntimeStatsTest, ComponentThroughputIsDivideByZeroSafe) {
  RuntimeStats zero;
  EXPECT_DOUBLE_EQ(zero.RankerMBps(), 0.0);
  EXPECT_DOUBLE_EQ(zero.MatchMBps(), 0.0);
  EXPECT_DOUBLE_EQ(zero.ScoreMBps(), 0.0);
  EXPECT_DOUBLE_EQ(zero.DocsPerSec(), 0.0);

  RuntimeStats stats;
  stats.bytes_processed = 20'000'000;
  stats.match_seconds = 4.0;
  stats.score_seconds = 1.0;
  stats.ranker_seconds = stats.match_seconds + stats.score_seconds;
  stats.stemmer_seconds = 5.0;
  stats.documents = 100;
  EXPECT_DOUBLE_EQ(stats.MatchMBps(), 5.0);
  EXPECT_DOUBLE_EQ(stats.ScoreMBps(), 20.0);
  EXPECT_DOUBLE_EQ(stats.DocsPerSec(), 10.0);
}

TEST(RuntimeStatsTest, MergeAccumulatesEveryCounter) {
  RuntimeStats a;
  a.stemmer_seconds = 1.0;
  a.ranker_seconds = 2.0;
  a.match_seconds = 1.5;
  a.score_seconds = 0.5;
  a.bytes_processed = 100;
  a.documents = 3;
  a.detections = 7;
  RuntimeStats b;
  b.stemmer_seconds = 0.5;
  b.ranker_seconds = 1.0;
  b.match_seconds = 0.75;
  b.score_seconds = 0.25;
  b.bytes_processed = 50;
  b.documents = 2;
  b.detections = 4;
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.stemmer_seconds, 1.5);
  EXPECT_DOUBLE_EQ(a.ranker_seconds, 3.0);
  EXPECT_DOUBLE_EQ(a.match_seconds, 2.25);
  EXPECT_DOUBLE_EQ(a.score_seconds, 0.75);
  EXPECT_EQ(a.bytes_processed, 150u);
  EXPECT_EQ(a.documents, 5u);
  EXPECT_EQ(a.detections, 11u);
}

TEST(TidTableTest, OverflowReturnsSentinelWithoutMutatingState) {
  GlobalTidTable tids;
  tids.SetCapacityForTesting(2);
  uint32_t a = tids.Intern("alpha");
  uint32_t b = tids.Intern("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_FALSE(tids.overflowed());

  // The table is full: a new term must get the unknown sentinel and must
  // not change the table.
  EXPECT_EQ(tids.Intern("gamma"), GlobalTidTable::kMaxTid);
  EXPECT_TRUE(tids.overflowed());
  EXPECT_EQ(tids.size(), 2u);
  EXPECT_EQ(tids.Lookup("gamma"), GlobalTidTable::kMaxTid);

  // Lookups and re-interns of existing terms still resolve after overflow.
  EXPECT_EQ(tids.Lookup("alpha"), a);
  EXPECT_EQ(tids.Intern("alpha"), a);
  EXPECT_EQ(tids.Intern("beta"), b);
  EXPECT_EQ(tids.Intern("delta"), GlobalTidTable::kMaxTid);
  EXPECT_EQ(tids.size(), 2u);
}

TEST(QuantizedStoreTest, DenseIdsAreContiguousAndSorted) {
  QuantizedInterestingnessStore store;
  InterestingnessVector vec;
  store.Add("zebra", vec);
  store.Add("apple", vec);
  store.Add("mango", vec);
  store.Finalize();
  ASSERT_EQ(store.NumConcepts(), 3u);
  EXPECT_EQ(store.IdOf("apple"), 0u);
  EXPECT_EQ(store.IdOf("mango"), 1u);
  EXPECT_EQ(store.IdOf("zebra"), 2u);
  EXPECT_EQ(store.KeyOf(1), "mango");
  EXPECT_EQ(store.IdOf("unknown"), kInvalidConcept);
}

TEST(QuantizedStoreTest, SerializationRoundTripsDenseLayout) {
  QuantizedInterestingnessStore store;
  for (int c = 0; c < 5; ++c) {
    InterestingnessVector vec;
    vec.freq_exact = c * 10.0;
    vec.unit_score = 1.0 + c * 0.5;
    vec.number_of_chars = 7.0 + c;
    vec.high_level_type[c % kNumEntityTypes] = 1.0;
    store.Add("concept " + std::to_string(c), vec);
  }
  store.Finalize();

  BinaryWriter writer;
  store.SaveTo(&writer);
  BinaryReader reader(writer.buffer());
  auto loaded_or = QuantizedInterestingnessStore::LoadFrom(&reader);
  ASSERT_TRUE(loaded_or.ok());
  const QuantizedInterestingnessStore& loaded = *loaded_or;

  ASSERT_EQ(loaded.NumConcepts(), store.NumConcepts());
  std::vector<double> got, want;
  for (int c = 0; c < 5; ++c) {
    std::string key = "concept " + std::to_string(c);
    EXPECT_EQ(loaded.IdOf(key), store.IdOf(key));
    EXPECT_EQ(loaded.KeyOf(loaded.IdOf(key)), key);
    ASSERT_TRUE(store.Lookup(key, &want));
    ASSERT_TRUE(loaded.Lookup(key, &got));
    EXPECT_EQ(got, want);  // Bit-identical dequantization.
    ASSERT_TRUE(loaded.LookupById(loaded.IdOf(key), &got));
    EXPECT_EQ(got, want);
  }
  EXPECT_FALSE(loaded.Lookup("unknown", &got));
  EXPECT_FALSE(loaded.LookupById(kInvalidConcept, &got));
}

TEST(QuantizedStoreTest, EmptyStoreSerializationRoundTrip) {
  QuantizedInterestingnessStore store;
  store.Finalize();
  BinaryWriter writer;
  store.SaveTo(&writer);
  BinaryReader reader(writer.buffer());
  auto loaded_or = QuantizedInterestingnessStore::LoadFrom(&reader);
  ASSERT_TRUE(loaded_or.ok());
  EXPECT_EQ(loaded_or->NumConcepts(), 0u);
  EXPECT_EQ(loaded_or->IdOf("anything"), kInvalidConcept);
  std::vector<double> out;
  EXPECT_FALSE(loaded_or->Lookup("anything", &out));
}

TEST(PackedRelevanceTest, SerializationRoundTripsDenseLayout) {
  GlobalTidTable tids;
  PackedRelevanceStore store(&tids);
  store.Add("windsurfing", {{"board", 40.0}, {"sail", 25.0}, {"wave", 5.0}});
  store.Add("alpha", {{"board", 12.0}, {"first", 30.0}});
  store.Finalize();

  BinaryWriter writer;
  store.SaveTo(&writer);
  BinaryReader reader(writer.buffer());
  auto loaded_or = PackedRelevanceStore::LoadFrom(&reader, &tids);
  ASSERT_TRUE(loaded_or.ok());
  const PackedRelevanceStore& loaded = *loaded_or;

  ASSERT_EQ(loaded.NumConcepts(), store.NumConcepts());
  EXPECT_EQ(loaded.IdOf("alpha"), store.IdOf("alpha"));
  EXPECT_EQ(loaded.IdOf("windsurfing"), store.IdOf("windsurfing"));
  EXPECT_EQ(loaded.IdOf("unknown"), kInvalidConcept);

  std::unordered_set<uint32_t> context = {tids.Lookup("board"),
                                          tids.Lookup("wave")};
  EXPECT_DOUBLE_EQ(loaded.Score("windsurfing", context),
                   store.Score("windsurfing", context));
  EXPECT_DOUBLE_EQ(loaded.Score("alpha", context),
                   store.Score("alpha", context));
  EXPECT_GT(loaded.Score("windsurfing", context), 0.0);

  // The id-indexed hot path must agree with the string-keyed lookup.
  EpochSet eset;
  eset.Reset(tids.size());
  for (uint32_t tid : context) eset.Insert(tid);
  EXPECT_DOUBLE_EQ(loaded.ScoreById(loaded.IdOf("windsurfing"), eset),
                   store.Score("windsurfing", context));
  EXPECT_DOUBLE_EQ(loaded.ScoreById(kInvalidConcept, eset), 0.0);
}

TEST(PackedRelevanceTest, EmptyStoreSerializationRoundTrip) {
  GlobalTidTable tids;
  PackedRelevanceStore store(&tids);
  store.Finalize();
  BinaryWriter writer;
  store.SaveTo(&writer);
  BinaryReader reader(writer.buffer());
  auto loaded_or = PackedRelevanceStore::LoadFrom(&reader, &tids);
  ASSERT_TRUE(loaded_or.ok());
  EXPECT_EQ(loaded_or->NumConcepts(), 0u);
  EXPECT_DOUBLE_EQ(loaded_or->Score("anything", {}), 0.0);
}

}  // namespace
}  // namespace ckr
