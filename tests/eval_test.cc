// Unit tests for ckr_eval: error rates (Eq. 4/5), NDCG (Eq. 6),
// cross-validation, editorial panel.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "corpus/doc_generator.h"
#include "eval/cross_validation.h"
#include "eval/editorial.h"
#include "eval/metrics.h"

namespace ckr {
namespace {

TEST(ErrorRateTest, PaperExampleUnweighted) {
  // Perfect order [A,B,C,D]; both R1=[A,B,D,C] and R2=[B,A,C,D] make one
  // pairwise mistake of six: error 16.67%.
  std::vector<double> ctr = {0.15, 0.05, 0.02, 0.01};
  std::vector<double> r1 = {4, 3, 1, 2};  // Scores inducing A,B,D,C.
  std::vector<double> r2 = {3, 4, 2, 1};  // B,A,C,D.
  EXPECT_NEAR(PairwiseErrorRate(r1, ctr, false), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(PairwiseErrorRate(r2, ctr, false), 1.0 / 6.0, 1e-12);
}

TEST(ErrorRateTest, PaperExampleWeighted) {
  // With CTRs [.15,.05,.02,.01], R1's mistake (D,C) costs 0.01 and R2's
  // (B,A) costs 0.10 of a total pair mass of 0.45: 2.22% vs 22.22%.
  std::vector<double> ctr = {0.15, 0.05, 0.02, 0.01};
  std::vector<double> r1 = {4, 3, 1, 2};
  std::vector<double> r2 = {3, 4, 2, 1};
  EXPECT_NEAR(PairwiseErrorRate(r1, ctr, true), 0.01 / 0.45, 1e-12);
  EXPECT_NEAR(PairwiseErrorRate(r2, ctr, true), 0.10 / 0.45, 1e-12);
}

TEST(ErrorRateTest, PerfectAndReversed) {
  std::vector<double> ctr = {0.3, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(PairwiseErrorRate({3, 2, 1}, ctr, true), 0.0);
  EXPECT_DOUBLE_EQ(PairwiseErrorRate({1, 2, 3}, ctr, true), 1.0);
}

TEST(ErrorRateTest, PredictionTiesCountHalf) {
  std::vector<double> ctr = {0.3, 0.1};
  EXPECT_DOUBLE_EQ(PairwiseErrorRate({1, 1}, ctr, false), 0.5);
  EXPECT_DOUBLE_EQ(PairwiseErrorRate({1, 1}, ctr, true), 0.5);
}

TEST(ErrorRateTest, EqualCtrPairsSkipped) {
  std::vector<double> ctr = {0.2, 0.2, 0.1};
  // Only two pairs carry preference: (0,2) and (1,2).
  PairwiseErrorAccumulator acc;
  AccumulatePairwiseError({1, 2, 3}, ctr, false, &acc);
  EXPECT_DOUBLE_EQ(acc.total_mass, 2.0);
  EXPECT_DOUBLE_EQ(acc.error_mass, 2.0);
}

TEST(ErrorRateTest, AccumulatorPoolsAcrossDocuments) {
  PairwiseErrorAccumulator acc;
  AccumulatePairwiseError({2, 1}, {0.2, 0.1}, false, &acc);  // Correct.
  AccumulatePairwiseError({1, 2}, {0.2, 0.1}, false, &acc);  // Wrong.
  EXPECT_DOUBLE_EQ(acc.Rate(), 0.5);
}

TEST(BucketizerTest, QuantileBuckets) {
  std::vector<double> ctrs;
  for (int i = 0; i < 1000; ++i) ctrs.push_back(i / 1000.0);
  CtrBucketizer buckets(ctrs);
  EXPECT_LT(buckets.BucketNo(0.0), 10);
  EXPECT_NEAR(buckets.BucketNo(0.5), 500, 10);
  EXPECT_GE(buckets.BucketNo(0.9991), 990);
  EXPECT_GE(buckets.Score(0.9991), 9.9);
  EXPECT_LE(buckets.Score(1.5), 10.0);  // Above-range clamps.
}

TEST(BucketizerTest, TiedValuesShareBucket) {
  CtrBucketizer buckets({0.1, 0.1, 0.1, 0.9});
  EXPECT_EQ(buckets.BucketNo(0.1), buckets.BucketNo(0.1));
  EXPECT_LT(buckets.BucketNo(0.1), buckets.BucketNo(0.9));
}

TEST(NdcgTest, PaperExampleAtOne) {
  // Simplified gains score(j) = CTR*10 (the paper's illustration):
  // ndcg@1 of R2 = (2^0.5 - 1) / (2^1.5 - 1) ~= 0.23. We reproduce the
  // gain arithmetic directly.
  double expected = (std::pow(2.0, 0.5) - 1.0) / (std::pow(2.0, 1.5) - 1.0);
  EXPECT_NEAR(expected, 0.2265, 5e-4);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  CtrBucketizer buckets({0.01, 0.02, 0.05, 0.15});
  std::vector<double> ctr = {0.15, 0.05, 0.02, 0.01};
  std::vector<double> pred = {9, 7, 5, 1};
  for (size_t k = 1; k <= 4; ++k) {
    EXPECT_DOUBLE_EQ(NdcgAtK(pred, ctr, buckets, k), 1.0) << k;
  }
}

TEST(NdcgTest, WorseRankingScoresLower) {
  CtrBucketizer buckets({0.01, 0.02, 0.05, 0.15});
  std::vector<double> ctr = {0.15, 0.05, 0.02, 0.01};
  std::vector<double> good = {9, 7, 5, 1};
  std::vector<double> bad = {1, 5, 7, 9};
  for (size_t k = 1; k <= 3; ++k) {
    EXPECT_LT(NdcgAtK(bad, ctr, buckets, k), NdcgAtK(good, ctr, buckets, k));
  }
}

TEST(NdcgTest, MonotoneInRankQuality) {
  CtrBucketizer buckets({0.01, 0.02, 0.05, 0.15});
  std::vector<double> ctr = {0.15, 0.05, 0.02, 0.01};
  // Swapping the top item deeper hurts ndcg@1 progressively.
  double top_right = NdcgAtK({9, 1, 2, 3}, ctr, buckets, 1);
  double top_second = NdcgAtK({8, 9, 2, 1}, ctr, buckets, 1);
  double top_last = NdcgAtK({1, 2, 3, 9}, ctr, buckets, 1);
  EXPECT_DOUBLE_EQ(top_right, 1.0);
  EXPECT_GT(top_second, top_last);
}

TEST(NdcgTest, EmptyAndNoGainEdgeCases) {
  CtrBucketizer buckets({0.1});
  EXPECT_DOUBLE_EQ(NdcgAtK({}, {}, buckets, 3), 1.0);
}

TEST(KFoldTest, BalancedAndComplete) {
  auto folds = KFoldAssignment(103, 5, 1);
  ASSERT_EQ(folds.size(), 103u);
  std::vector<int> counts(5, 0);
  for (int f : folds) {
    ASSERT_GE(f, 0);
    ASSERT_LT(f, 5);
    ++counts[static_cast<size_t>(f)];
  }
  for (int c : counts) EXPECT_NEAR(c, 103 / 5, 1);
}

TEST(KFoldTest, SplitPartitions) {
  auto folds = KFoldAssignment(50, 5, 2);
  for (int fold = 0; fold < 5; ++fold) {
    FoldSplit split = MakeFoldSplit(folds, fold);
    EXPECT_EQ(split.train.size() + split.test.size(), 50u);
    std::set<size_t> all(split.train.begin(), split.train.end());
    all.insert(split.test.begin(), split.test.end());
    EXPECT_EQ(all.size(), 50u);
  }
}

TEST(KFoldTest, DeterministicInSeed) {
  EXPECT_EQ(KFoldAssignment(40, 4, 9), KFoldAssignment(40, 4, 9));
  EXPECT_NE(KFoldAssignment(40, 4, 9), KFoldAssignment(40, 4, 10));
}

TEST(BootstrapCiTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(BootstrapRatioCi({}, 100, 0.95, 1).mean, 0.0);
  BootstrapCi one = BootstrapRatioCi({{1.0, 2.0}}, 100, 0.95, 1);
  EXPECT_DOUBLE_EQ(one.mean, 0.5);
  EXPECT_DOUBLE_EQ(one.lo, 0.5);  // Single group: no variation.
  EXPECT_DOUBLE_EQ(one.hi, 0.5);
}

TEST(BootstrapCiTest, CoversTheMeanAndOrdersBounds) {
  Rng rng(5);
  std::vector<std::pair<double, double>> groups;
  for (int i = 0; i < 200; ++i) {
    double total = 1.0 + rng.NextDouble() * 4.0;
    groups.emplace_back(total * (0.25 + 0.1 * rng.NextGaussian()), total);
  }
  BootstrapCi ci = BootstrapRatioCi(groups, 2000, 0.95, 42);
  EXPECT_LT(ci.lo, ci.mean);
  EXPECT_GT(ci.hi, ci.mean);
  EXPECT_NEAR(ci.mean, 0.25, 0.03);
  // The 95% band of a 200-group mean should be tight.
  EXPECT_LT(ci.hi - ci.lo, 0.1);
}

TEST(BootstrapCiTest, DeterministicInSeed) {
  std::vector<std::pair<double, double>> groups = {
      {1, 4}, {2, 5}, {0, 3}, {1, 2}, {3, 7}};
  BootstrapCi a = BootstrapRatioCi(groups, 500, 0.9, 7);
  BootstrapCi b = BootstrapRatioCi(groups, 500, 0.9, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapCiTest, BitIdenticalAcrossWorkerCounts) {
  // Per-replicate RNGs make the resampling embarrassingly parallel
  // without changing a single draw.
  std::vector<std::pair<double, double>> groups = {
      {1, 4}, {2, 5}, {0, 3}, {1, 2}, {3, 7}, {2, 9}, {4, 6}};
  BootstrapCi one = BootstrapRatioCi(groups, 1000, 0.95, 31, 1);
  for (unsigned threads : {2u, 4u}) {
    BootstrapCi many = BootstrapRatioCi(groups, 1000, 0.95, 31, threads);
    EXPECT_EQ(one.mean, many.mean);
    EXPECT_EQ(one.lo, many.lo);
    EXPECT_EQ(one.hi, many.hi);
  }
}

class EditorialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorldConfig cfg;
    cfg.num_topics = 6;
    cfg.background_vocab = 600;
    cfg.words_per_topic = 40;
    cfg.num_named_entities = 150;
    cfg.num_concepts = 80;
    cfg.num_generic_concepts = 10;
    auto world_or = World::Create(cfg);
    ASSERT_TRUE(world_or.ok());
    world_ = std::move(*world_or);
    gen_ = std::make_unique<DocGenerator>(*world_);
  }
  std::unique_ptr<World> world_;
  std::unique_ptr<DocGenerator> gen_;
};

TEST_F(EditorialTest, DistributionSumsToOne) {
  EditorialPanel panel(*world_);
  std::vector<Document> docs;
  for (DocId i = 0; i < 10; ++i) {
    docs.push_back(gen_->Generate(Document::Kind::kNews, i));
  }
  std::vector<JudgingTask> tasks;
  for (const Document& d : docs) {
    for (const MentionTruth& m : d.mentions) {
      tasks.push_back({&d, world_->entity(m.entity).key});
    }
  }
  JudgmentDistribution dist = panel.JudgeAll(tasks);
  EXPECT_EQ(dist.total, tasks.size());
  double isum = 0, rsum = 0;
  for (double x : dist.interest) isum += x;
  for (double x : dist.relevance) rsum += x;
  EXPECT_NEAR(isum, 1.0, 1e-9);
  EXPECT_NEAR(rsum, 1.0, 1e-9);
}

TEST_F(EditorialTest, JudgmentsTrackLatents) {
  EditorialPanel panel(*world_);
  Document doc = gen_->Generate(Document::Kind::kNews, 3);
  // Find the most and least interesting planted entities.
  const MentionTruth* hot = nullptr;
  const MentionTruth* cold = nullptr;
  for (const MentionTruth& m : doc.mentions) {
    double g = world_->entity(m.entity).interestingness;
    if (!hot || g > world_->entity(hot->entity).interestingness) hot = &m;
    if (!cold || g < world_->entity(cold->entity).interestingness) cold = &m;
  }
  ASSERT_NE(hot, nullptr);
  Rng rng(1);
  int hot_very = 0, cold_very = 0;
  for (int i = 0; i < 300; ++i) {
    if (panel.JudgeInterest(doc, world_->entity(hot->entity).key, rng) ==
        InterestJudgment::kVery) {
      ++hot_very;
    }
    if (panel.JudgeInterest(doc, world_->entity(cold->entity).key, rng) ==
        InterestJudgment::kVery) {
      ++cold_very;
    }
  }
  EXPECT_GT(hot_very, cold_very);
}

TEST_F(EditorialTest, OffTopicEntitiesJudgedNotRelevant) {
  EditorialPanel panel(*world_);
  // Aggregate over stories: planted off-topic mentions should rarely be
  // judged Very Relevant.
  Rng rng(2);
  int off_very = 0, off_total = 0;
  for (DocId id = 0; id < 40; ++id) {
    Document doc = gen_->Generate(Document::Kind::kNews, id);
    for (const MentionTruth& m : doc.mentions) {
      if (m.relevance > 0.25) continue;  // On-topic or junk-but-lucky.
      ++off_total;
      if (panel.JudgeRelevance(doc, world_->entity(m.entity).key, rng) ==
          RelevanceJudgment::kVery) {
        ++off_very;
      }
    }
  }
  ASSERT_GT(off_total, 20);
  EXPECT_LT(static_cast<double>(off_very) / off_total, 0.05);
}

TEST_F(EditorialTest, JudgeAllDeterministic) {
  EditorialPanel panel(*world_);
  Document doc = gen_->Generate(Document::Kind::kNews, 5);
  std::vector<JudgingTask> tasks;
  for (const MentionTruth& m : doc.mentions) {
    tasks.push_back({&doc, world_->entity(m.entity).key});
  }
  JudgmentDistribution a = panel.JudgeAll(tasks);
  JudgmentDistribution b = panel.JudgeAll(tasks);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(a.interest[i], b.interest[i]);
    EXPECT_DOUBLE_EQ(a.relevance[i], b.relevance[i]);
  }
}

}  // namespace
}  // namespace ckr
