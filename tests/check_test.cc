// Death-test coverage for the debug-invariant layer. This TU is compiled
// with CKR_ENABLE_DCHECKS (see CMakeLists) so CKR_DCHECK and the Span
// bounds checks are live even though the build type defines NDEBUG —
// exactly the configuration the sanitizer presets use.
#include "common/check.h"

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "gtest/gtest.h"

namespace ckr {
namespace {

static_assert(CKR_DEBUG_CHECKS == 1,
              "check_test must build with dchecks enabled");

TEST(CkrCheckTest, PassingChecksAreSilent) {
  CKR_CHECK(1 + 1 == 2);
  CKR_CHECK_EQ(4, 4);
  CKR_CHECK_NE(4, 5);
  CKR_CHECK_LT(1, 2);
  CKR_CHECK_LE(2, 2);
  CKR_CHECK_GT(3, 2);
  CKR_CHECK_GE(3, 3);
  CKR_DCHECK(true);
  CKR_DCHECK_EQ(7, 7);
}

TEST(CkrCheckDeathTest, FailedCheckAbortsWithFileLineAndExpression) {
  EXPECT_DEATH(CKR_CHECK(1 == 2),
               "CKR_CHECK failed at .*check_test\\.cc:[0-9]+: 1 == 2");
}

TEST(CkrCheckDeathTest, ComparisonMacrosReportTheComparison) {
  EXPECT_DEATH(CKR_CHECK_LT(5, 3), "\\(5\\) < \\(3\\)");
  EXPECT_DEATH(CKR_CHECK_EQ(1, 2), "\\(1\\) == \\(2\\)");
}

TEST(CkrCheckDeathTest, DcheckIsLiveInThisConfiguration) {
  EXPECT_DEATH(CKR_DCHECK(false), "CKR_CHECK failed");
}

TEST(CkrSpanTest, ElementAccessAndIteration) {
  std::vector<uint32_t> v{10, 20, 30};
  Span<const uint32_t> s = MakeSpan(v);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 10u);
  EXPECT_EQ(s[2], 30u);
  EXPECT_EQ(s.front(), 10u);
  EXPECT_EQ(s.back(), 30u);
  uint32_t sum = 0;
  for (uint32_t x : s) sum += x;
  EXPECT_EQ(sum, 60u);

  Span<uint32_t> m = MakeSpan(v);
  m[1] = 99;
  EXPECT_EQ(v[1], 99u);

  Span<const uint32_t> sub = s.subspan(1, 2);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0], 99u);

  Span<const uint32_t> empty;
  EXPECT_TRUE(empty.empty());
}

TEST(CkrSpanDeathTest, OutOfRangeAccessIsCaught) {
  std::vector<uint32_t> v{1, 2, 3};
  Span<const uint32_t> s = MakeSpan(v);
  EXPECT_DEATH(s[3], "CKR_CHECK failed");
  EXPECT_DEATH(s.subspan(2, 2), "CKR_CHECK failed");
  Span<const uint32_t> empty;
  EXPECT_DEATH(empty.front(), "CKR_CHECK failed");
  EXPECT_DEATH(empty.back(), "CKR_CHECK failed");
}

TEST(CkrSpanTest, CsrRowSlicesBetweenOffsets) {
  // Two rows: [5, 6] and [7].
  std::vector<uint32_t> pool{5, 6, 7};
  std::vector<size_t> offsets{0, 2, 3};
  Span<const uint32_t> row0 = CsrRow(pool, offsets, 0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0], 5u);
  EXPECT_EQ(row0[1], 6u);
  Span<const uint32_t> row1 = CsrRow(pool, offsets, 1);
  ASSERT_EQ(row1.size(), 1u);
  EXPECT_EQ(row1[0], 7u);
}

TEST(CkrSpanDeathTest, CsrRowRejectsBrokenOffsetTables) {
  std::vector<uint32_t> pool{5, 6, 7};
  std::vector<size_t> non_monotone{2, 0, 3};
  EXPECT_DEATH(CsrRow(pool, non_monotone, 0), "CKR_CHECK failed");
  std::vector<size_t> past_pool{0, 9};
  EXPECT_DEATH(CsrRow(pool, past_pool, 0), "CKR_CHECK failed");
  std::vector<size_t> offsets{0, 2, 3};
  EXPECT_DEATH(CsrRow(pool, offsets, 2), "CKR_CHECK failed");
}

TEST(CkrCheckDeathTest, DispatchLedgerCatchesDoubleDispatch) {
  internal::DispatchLedger ledger(4);
  ledger.Claim(1);
  EXPECT_DEATH(ledger.Claim(1), "CKR_CHECK failed");
}

}  // namespace
}  // namespace ckr
