// Tests for the block-compressed postings layer: integer codec round-trip
// fuzzing (including block-boundary and single-element edge cases and
// truncated-blob rejection), skip-cursor traversal, block-max index
// evaluator equivalence, and the versioned serialization format.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "corpus/document.h"
#include "index/block_codecs.h"
#include "index/block_max_index.h"
#include "index/block_postings.h"
#include "index/inverted_index.h"

namespace ckr {
namespace {

Document MakeDoc(DocId id, std::string text) {
  Document d;
  d.id = id;
  d.text = std::move(text);
  return d;
}

// ---------- Codec round-trip fuzzing ----------

class CodecTest : public ::testing::TestWithParam<BlockCodec> {};

std::vector<uint32_t> DecodeOrDie(BlockCodec codec,
                                  const std::vector<uint8_t>& blob,
                                  size_t count) {
  std::vector<uint32_t> out(count);
  Status s = DecodeBlock(codec, blob.data(), blob.size(), count, out.data());
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST_P(CodecTest, RoundTripEdgeCounts) {
  const BlockCodec codec = GetParam();
  // Counts around group (4), word (up to 240) and block (128) boundaries.
  const size_t counts[] = {1, 2, 3, 4, 5, 7, 8, 59, 60, 61, 63, 64, 127, 128};
  Rng rng(42);
  for (size_t count : counts) {
    for (int style = 0; style < 4; ++style) {
      std::vector<uint32_t> values(count);
      for (uint32_t& v : values) {
        switch (style) {
          case 0: v = 0; break;                                     // zeros
          case 1: v = static_cast<uint32_t>(rng.NextBounded(4)); break;
          case 2: v = static_cast<uint32_t>(rng.NextBounded(1 << 20)); break;
          default: v = static_cast<uint32_t>(rng.Next()); break;    // full
        }
      }
      std::vector<uint8_t> blob;
      EncodeBlock(codec, values.data(), count, &blob);
      EXPECT_EQ(DecodeOrDie(codec, blob, count), values)
          << BlockCodecName(codec) << " count=" << count
          << " style=" << style;
    }
  }
}

TEST_P(CodecTest, RoundTripRandomFuzz) {
  const BlockCodec codec = GetParam();
  Rng rng(7);
  for (int iter = 0; iter < 300; ++iter) {
    const size_t count = 1 + rng.NextBounded(kPostingBlockSize);
    // Mix magnitudes within one block: shift by a random bit width.
    std::vector<uint32_t> values(count);
    for (uint32_t& v : values) {
      const uint32_t width = static_cast<uint32_t>(rng.NextBounded(33));
      v = width == 0 ? 0
                     : static_cast<uint32_t>(rng.Next() >>
                                             (32 + (32 - width)));
    }
    std::vector<uint8_t> blob;
    EncodeBlock(codec, values.data(), count, &blob);
    ASSERT_EQ(DecodeOrDie(codec, blob, count), values) << "iter=" << iter;
  }
}

TEST_P(CodecTest, EveryTruncationRejected) {
  const BlockCodec codec = GetParam();
  Rng rng(11);
  std::vector<uint32_t> values(100);
  for (uint32_t& v : values) {
    v = static_cast<uint32_t>(rng.NextBounded(1u << 17));
  }
  std::vector<uint8_t> blob;
  EncodeBlock(codec, values.data(), values.size(), &blob);
  std::vector<uint32_t> out(values.size());
  // Every strict prefix must fail: the decoder demands exactly `count`
  // values from exactly the blob's bytes.
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    Status s = DecodeBlock(codec, blob.data(), cut, values.size(), out.data());
    EXPECT_FALSE(s.ok()) << "prefix " << cut << " accepted";
  }
  // Trailing bytes beyond the encoding must fail too.
  std::vector<uint8_t> padded = blob;
  padded.resize(blob.size() + 8, 0);
  Status s =
      DecodeBlock(codec, padded.data(), padded.size(), values.size(),
                  out.data());
  EXPECT_FALSE(s.ok());
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecTest,
                         ::testing::Values(BlockCodec::kVarintGB,
                                           BlockCodec::kSimple8b),
                         [](const auto& pinfo) {
                           return pinfo.param == BlockCodec::kVarintGB
                                      ? "VarintGB"
                                      : "Simple8b";
                         });

TEST(CodecEdge, EmptyBlock) {
  std::vector<uint8_t> blob;
  EncodeBlock(BlockCodec::kVarintGB, nullptr, 0, &blob);
  EXPECT_TRUE(blob.empty());
  EXPECT_TRUE(DecodeBlock(BlockCodec::kVarintGB, nullptr, 0, 0, nullptr).ok());
  uint8_t junk = 0;
  EXPECT_FALSE(DecodeBlock(BlockCodec::kVarintGB, &junk, 1, 0, nullptr).ok());
}

TEST(CodecEdge, VarintGbTailControlBitsChecked) {
  // Two values leave the upper four control bits unused; the encoder
  // zeroes them, so a nonzero tail is corruption.
  const uint32_t values[] = {5, 9};
  std::vector<uint8_t> blob;
  EncodeBlock(BlockCodec::kVarintGB, values, 2, &blob);
  blob[0] |= 0x10;  // Set a tail control bit.
  uint32_t out[2];
  EXPECT_FALSE(
      DecodeBlock(BlockCodec::kVarintGB, blob.data(), blob.size(), 2, out)
          .ok());
}

TEST(CodecEdge, Simple8bZeroRunPayloadChecked) {
  // 240 zeros pack into a single selector-0 word with an all-zero payload.
  std::vector<uint32_t> zeros(128, 0);
  std::vector<uint8_t> blob;
  EncodeBlock(BlockCodec::kSimple8b, zeros.data(), zeros.size(), &blob);
  ASSERT_EQ(blob.size(), 8u);
  blob[2] = 0xff;  // Corrupt the (must-be-zero) payload.
  std::vector<uint32_t> out(zeros.size());
  EXPECT_FALSE(DecodeBlock(BlockCodec::kSimple8b, blob.data(), blob.size(),
                           zeros.size(), out.data())
                   .ok());
}

TEST(CodecEdge, Simple8bTailPaddingChecked) {
  // One 1-bit value uses selector 2 (60 x 1 bit); tail slots must be zero.
  const uint32_t values[] = {1, 1, 1};
  std::vector<uint8_t> blob;
  EncodeBlock(BlockCodec::kSimple8b, values, 3, &blob);
  ASSERT_EQ(blob.size(), 8u);
  blob[4] = 0x01;  // A bit beyond the three used slots.
  uint32_t out[3];
  EXPECT_FALSE(
      DecodeBlock(BlockCodec::kSimple8b, blob.data(), blob.size(), 3, out)
          .ok());
}

// ---------- Posting store + cursor ----------

struct TermList {
  std::vector<uint32_t> docs;
  std::vector<uint32_t> tfs;
};

TermList RandomTermList(Rng* rng, uint32_t num_docs, size_t target_size) {
  TermList list;
  uint32_t doc = static_cast<uint32_t>(rng->NextBounded(3));
  while (list.docs.size() < target_size && doc < num_docs) {
    list.docs.push_back(doc);
    list.tfs.push_back(1 + static_cast<uint32_t>(rng->NextBounded(5)));
    doc += 1 + static_cast<uint32_t>(rng->NextBounded(7));
  }
  return list;
}

BlockPostingsStore MakeStore(BlockCodec codec,
                             const std::vector<TermList>& terms) {
  BlockPostingsStore::Builder builder(codec);
  std::vector<double> scores;
  for (const TermList& t : terms) {
    scores.assign(t.tfs.size(), 0.0);
    for (size_t i = 0; i < t.tfs.size(); ++i) {
      scores[i] = static_cast<double>(t.tfs[i]);
    }
    builder.AddTerm(MakeSpan(t.docs), MakeSpan(t.tfs), MakeSpan(scores));
  }
  return builder.Finish();
}

class StoreTest : public ::testing::TestWithParam<BlockCodec> {};

TEST_P(StoreTest, BlockGeometry) {
  // 129 postings: one full 128-doc block plus a 1-doc tail block.
  TermList t;
  for (uint32_t d = 0; d < 129; ++d) {
    t.docs.push_back(d * 2);
    t.tfs.push_back(1 + d % 3);
  }
  BlockPostingsStore store = MakeStore(GetParam(), {t});
  EXPECT_EQ(store.NumTerms(), 1u);
  EXPECT_EQ(store.NumBlocks(), 2u);
  EXPECT_EQ(store.TermBlocks(0), 2u);
  EXPECT_EQ(store.TermPostings(0), 129u);
  EXPECT_EQ(store.BlockDocCount(0, 0), 128u);
  EXPECT_EQ(store.BlockDocCount(0, 1), 1u);
  EXPECT_EQ(store.BlockLastDoc(0), 127u * 2);
  EXPECT_EQ(store.BlockLastDoc(1), 128u * 2);
}

TEST_P(StoreTest, CursorWalksExactPostings) {
  Rng rng(3);
  std::vector<TermList> terms;
  for (size_t size : {1u, 2u, 127u, 128u, 129u, 300u, 1000u}) {
    terms.push_back(RandomTermList(&rng, 1u << 20, size));
  }
  BlockPostingsStore store = MakeStore(GetParam(), terms);
  for (uint32_t tid = 0; tid < terms.size(); ++tid) {
    PostingCursor cur(&store, tid);
    for (size_t i = 0; i < terms[tid].docs.size(); ++i) {
      ASSERT_FALSE(cur.AtEnd()) << "tid=" << tid << " i=" << i;
      ASSERT_EQ(cur.doc(), terms[tid].docs[i]);
      ASSERT_EQ(cur.tf(), terms[tid].tfs[i]);
      cur.Next();
    }
    EXPECT_TRUE(cur.AtEnd());
  }
}

TEST_P(StoreTest, NextGeqMatchesLowerBound) {
  Rng rng(5);
  TermList t = RandomTermList(&rng, 1u << 18, 700);
  BlockPostingsStore store = MakeStore(GetParam(), {t});
  for (int iter = 0; iter < 500; ++iter) {
    PostingCursor cur(&store, 0);
    uint32_t target = 0;
    // A few monotone jumps per cursor, mirroring evaluator use.
    for (int hop = 0; hop < 4; ++hop) {
      target += static_cast<uint32_t>(rng.NextBounded(1u << 16));
      cur.NextGEQ(target);
      auto it = std::lower_bound(t.docs.begin(), t.docs.end(), target);
      if (it == t.docs.end()) {
        EXPECT_TRUE(cur.AtEnd());
        break;
      }
      ASSERT_EQ(cur.doc(), *it) << "target=" << target;
      const size_t idx = static_cast<size_t>(it - t.docs.begin());
      ASSERT_EQ(cur.tf(), t.tfs[idx]);
    }
  }
}

TEST_P(StoreTest, ShallowBoundMatchesContainingBlock) {
  Rng rng(9);
  TermList t = RandomTermList(&rng, 1u << 18, 900);
  BlockPostingsStore store = MakeStore(GetParam(), {t});
  PostingCursor cur(&store, 0);
  for (uint32_t target = 0; target < (1u << 18) && !cur.AtEnd();
       target += 997) {
    if (cur.doc() > target) continue;
    PostingCursor::BlockBound bb = cur.ShallowBound(target);
    auto it = std::lower_bound(t.docs.begin(), t.docs.end(), target);
    if (it == t.docs.end()) {
      EXPECT_EQ(bb.last_doc, PostingCursor::kEndDoc);
      EXPECT_EQ(bb.max_score, 0.0);
    } else {
      // The reported block covers the first posting >= target, and its
      // max dominates that posting's score (scores here are the tfs).
      const size_t idx = static_cast<size_t>(it - t.docs.begin());
      EXPECT_GE(bb.last_doc, *it);
      EXPECT_GE(bb.max_score, static_cast<double>(t.tfs[idx]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, StoreTest,
                         ::testing::Values(BlockCodec::kVarintGB,
                                           BlockCodec::kSimple8b),
                         [](const auto& pinfo) {
                           return pinfo.param == BlockCodec::kVarintGB
                                      ? "VarintGB"
                                      : "Simple8b";
                         });

// ---------- Block-max index: evaluators + serialization ----------

InvertedIndex BuildSyntheticIndex(uint64_t seed, size_t num_docs) {
  // Zipf-ish vocabulary so posting lists have very uneven lengths (the
  // regime pruning thrives in) and scores collide often (tie coverage).
  Rng rng(seed);
  InvertedIndex index;
  for (size_t d = 0; d < num_docs; ++d) {
    std::string text;
    const size_t len = 5 + rng.NextBounded(60);
    for (size_t i = 0; i < len; ++i) {
      const uint64_t u = rng.NextBounded(1000);
      uint64_t term;
      if (u < 500) {
        term = rng.NextBounded(8);  // Frequent head terms.
      } else if (u < 850) {
        term = 8 + rng.NextBounded(40);
      } else {
        term = 48 + rng.NextBounded(400);  // Rare tail.
      }
      text += "w" + std::to_string(term) + " ";
    }
    index.Add(MakeDoc(static_cast<DocId>(d * 7 + 3), std::move(text)));
  }
  index.Finalize();
  return index;
}

void ExpectIdenticalResults(const std::vector<SearchResult>& expected,
                            const std::vector<SearchResult>& actual,
                            const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].doc, actual[i].doc) << label << " rank " << i;
    // Bit-identical scores, not approximately equal.
    EXPECT_EQ(expected[i].score, actual[i].score) << label << " rank " << i;
  }
}

TEST(BlockMaxIndexTest, EvaluatorsMatchExhaustive) {
  InvertedIndex index = BuildSyntheticIndex(123, 400);
  const char* queries[] = {"w0",
                           "w0 w1",
                           "w3 w17 w99",
                           "w1 w2 w3 w4 w5",
                           "w7 w300 w301",
                           "w0 w0 w0",
                           "absentterm",
                           "w5 absentterm w12"};
  for (const char* q : queries) {
    for (size_t k : {1u, 3u, 10u, 50u, 1000u}) {
      auto oracle = index.Search(q, k);
      auto ms = index.Search(q, k, Bm25Params{}, QueryEvaluator::kMaxScore);
      auto bmw =
          index.Search(q, k, Bm25Params{}, QueryEvaluator::kBlockMaxWand);
      ExpectIdenticalResults(oracle, ms,
                             std::string("maxscore q=") + q + " k=" +
                                 std::to_string(k));
      ExpectIdenticalResults(oracle, bmw,
                             std::string("bmw q=") + q + " k=" +
                                 std::to_string(k));
    }
  }
}

TEST(BlockMaxIndexTest, DeferredBuildMatchesEagerExactly) {
  // build_block_index=false defers the eager Finalize() build (the
  // out-of-core path): pruned evaluators must fall back to the exhaustive
  // scorer until RebuildBlockIndex(), after which the block index must be
  // byte-for-byte the one the eager path would have built.
  Rng rng(99);
  std::vector<Document> docs;
  for (size_t d = 0; d < 300; ++d) {
    std::string text;
    const size_t len = 5 + rng.NextBounded(60);
    for (size_t i = 0; i < len; ++i) {
      text += "w" + std::to_string(rng.NextBounded(120)) + " ";
    }
    docs.push_back(MakeDoc(static_cast<DocId>(d * 7 + 3), std::move(text)));
  }
  InvertedIndex eager;
  IndexBuildOptions deferred_opts;
  deferred_opts.build_block_index = false;
  InvertedIndex deferred(deferred_opts);
  for (const Document& d : docs) {
    eager.Add(d);
    deferred.Add(d);
  }
  eager.Finalize();
  deferred.Finalize();
  EXPECT_TRUE(eager.has_block_index());
  EXPECT_FALSE(deferred.has_block_index());

  const char* queries[] = {"w0 w1", "w3 w17 w99", "w1 w2 w3 w4 w5",
                           "absentterm"};
  for (const char* q : queries) {
    auto oracle = eager.Search(q, 10);
    for (QueryEvaluator evaluator :
         {QueryEvaluator::kExhaustive, QueryEvaluator::kMaxScore,
          QueryEvaluator::kBlockMaxWand}) {
      ExpectIdenticalResults(
          oracle, deferred.Search(q, 10, Bm25Params{}, evaluator),
          std::string("deferred q=") + q);
    }
  }
  deferred.RebuildBlockIndex(BlockCodec::kVarintGB);
  EXPECT_TRUE(deferred.has_block_index());
  EXPECT_EQ(eager.SerializeBlockIndex(), deferred.SerializeBlockIndex());
  for (const char* q : queries) {
    ExpectIdenticalResults(
        eager.Search(q, 10, Bm25Params{}, QueryEvaluator::kBlockMaxWand),
        deferred.Search(q, 10, Bm25Params{}, QueryEvaluator::kBlockMaxWand),
        std::string("rebuilt q=") + q);
  }
}

TEST(BlockMaxIndexTest, DirectBuilderArbitraryQueryOrder) {
  // Drive BlockMaxIndex without an InvertedIndex: queries pass term ids in
  // arbitrary (not sorted) order, and all evaluators must agree anyway —
  // every sum replays the *query* order, whatever it is.
  Rng rng(55);
  const uint32_t num_docs = 600;
  std::vector<DocId> ext(num_docs);
  std::vector<double> norms(num_docs);
  for (uint32_t d = 0; d < num_docs; ++d) {
    ext[d] = d * 3 + 1;
    norms[d] = 0.5 + rng.NextDouble() * 2.0;
  }
  std::vector<TermList> terms;
  for (size_t size : {400u, 350u, 120u, 40u, 7u, 1u}) {
    terms.push_back(RandomTermList(&rng, num_docs, size));
  }
  for (BlockCodec codec : {BlockCodec::kVarintGB, BlockCodec::kSimple8b}) {
    BlockMaxIndex::Builder builder(codec, ext, norms);
    for (const TermList& t : terms) {
      builder.AddTerm(MakeSpan(t.docs), MakeSpan(t.tfs));
    }
    BlockMaxIndex idx = builder.Finish();
    const std::vector<std::vector<uint32_t>> queries = {
        {0}, {5, 0, 2}, {3, 1}, {5, 4, 3, 2, 1, 0}, {2, 5}};
    for (const auto& tids : queries) {
      for (size_t k : {1u, 10u, 50u}) {
        auto oracle =
            idx.TopK(MakeSpan(tids), k, QueryEvaluator::kExhaustive);
        auto ms = idx.TopK(MakeSpan(tids), k, QueryEvaluator::kMaxScore);
        auto bmw =
            idx.TopK(MakeSpan(tids), k, QueryEvaluator::kBlockMaxWand);
        ExpectIdenticalResults(oracle, ms, "direct maxscore");
        ExpectIdenticalResults(oracle, bmw, "direct bmw");
      }
    }
  }
}

TEST(BlockMaxIndexTest, NonDefaultParamsFallBackToExhaustive) {
  InvertedIndex index = BuildSyntheticIndex(5, 120);
  Bm25Params params;
  params.k1 = 1.6;
  auto a = index.Search("w0 w3", 10, params);
  auto b = index.Search("w0 w3", 10, params, QueryEvaluator::kMaxScore);
  ExpectIdenticalResults(a, b, "non-default fallback");
}

TEST(BlockMaxIndexTest, RebuildWithSimple8bIsEquivalent) {
  InvertedIndex index = BuildSyntheticIndex(321, 350);
  auto oracle = index.Search("w0 w2 w40", 20);
  index.RebuildBlockIndex(BlockCodec::kSimple8b);
  EXPECT_EQ(index.block_index().codec(), BlockCodec::kSimple8b);
  for (QueryEvaluator ev :
       {QueryEvaluator::kMaxScore, QueryEvaluator::kBlockMaxWand}) {
    auto got = index.Search("w0 w2 w40", 20, Bm25Params{}, ev);
    ExpectIdenticalResults(oracle, got, "simple8b");
  }
}

TEST(BlockMaxIndexTest, CompressionBeatsCsrColumns) {
  InvertedIndex index = BuildSyntheticIndex(999, 800);
  const size_t postings = index.block_index().store().NumPostings();
  ASSERT_GT(postings, 0u);
  // CSR stores 8 bytes per posting (u32 doc + u32 tf).
  const size_t csr_bytes = postings * 8;
  EXPECT_LE(index.block_index().CompressedPostingBytes() * 2, csr_bytes)
      << "block compression below the 2x acceptance floor";
}

class BlockIndexSerdeTest : public ::testing::TestWithParam<BlockCodec> {};

TEST_P(BlockIndexSerdeTest, RoundTripCurrentVersion) {
  InvertedIndex index = BuildSyntheticIndex(17, 250);
  index.RebuildBlockIndex(GetParam());
  auto before =
      index.Search("w0 w5 w33", 15, Bm25Params{}, QueryEvaluator::kMaxScore);
  const std::string blob = index.SerializeBlockIndex();
  Status s = index.LoadBlockIndex(blob);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(index.block_index().codec(), GetParam());
  auto after =
      index.Search("w0 w5 w33", 15, Bm25Params{}, QueryEvaluator::kMaxScore);
  ExpectIdenticalResults(before, after, "serde round trip");
  auto bmw = index.Search("w0 w5 w33", 15, Bm25Params{},
                          QueryEvaluator::kBlockMaxWand);
  ExpectIdenticalResults(before, bmw, "serde round trip bmw");
}

TEST_P(BlockIndexSerdeTest, V1BlobLoadsAndRebuildsMaxima) {
  InvertedIndex index = BuildSyntheticIndex(29, 250);
  index.RebuildBlockIndex(GetParam());
  auto before =
      index.Search("w1 w8 w50", 15, Bm25Params{}, QueryEvaluator::kBlockMaxWand);
  // A v1 blob predates the max-score columns; the loader recomputes them
  // from the postings, bit-identically.
  const std::string v1 = index.block_index().SerializeVersion(1);
  const std::string v2 = index.block_index().SerializeVersion(2);
  EXPECT_LT(v1.size(), v2.size());
  Status s = index.LoadBlockIndex(v1);
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto after = index.Search("w1 w8 w50", 15, Bm25Params{},
                            QueryEvaluator::kBlockMaxWand);
  ExpectIdenticalResults(before, after, "v1 upgrade");
}

INSTANTIATE_TEST_SUITE_P(Codecs, BlockIndexSerdeTest,
                         ::testing::Values(BlockCodec::kVarintGB,
                                           BlockCodec::kSimple8b),
                         [](const auto& pinfo) {
                           return pinfo.param == BlockCodec::kVarintGB
                                      ? "VarintGB"
                                      : "Simple8b";
                         });

TEST(BlockIndexSerdeRejects, EveryTruncationFailsCleanly) {
  InvertedIndex index = BuildSyntheticIndex(31, 60);
  const std::string blob = index.SerializeBlockIndex();
  // Every strict prefix must be rejected with a Status — never a crash,
  // never a silently short index (the store-pack discipline).
  for (size_t cut = 0; cut < blob.size();
       cut += (cut < 64 ? 1 : 37)) {  // Dense over the header, strided after.
    auto result = BlockMaxIndex::Deserialize(std::string_view(blob).substr(0, cut));
    EXPECT_FALSE(result.ok()) << "prefix " << cut << " accepted";
  }
}

TEST(BlockIndexSerdeRejects, BadMagicVersionCodecTrailing) {
  InvertedIndex index = BuildSyntheticIndex(37, 60);
  const std::string blob = index.SerializeBlockIndex();

  std::string bad_magic = blob;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x01);
  EXPECT_FALSE(BlockMaxIndex::Deserialize(bad_magic).ok());

  std::string bad_version = blob;
  bad_version[4] = 9;  // u16 version little-endian low byte.
  EXPECT_FALSE(BlockMaxIndex::Deserialize(bad_version).ok());
  bad_version[4] = 0;  // Version 0 is below the floor.
  EXPECT_FALSE(BlockMaxIndex::Deserialize(bad_version).ok());

  std::string bad_codec = blob;
  bad_codec[6] = 0x7f;  // u16 codec low byte.
  EXPECT_FALSE(BlockMaxIndex::Deserialize(bad_codec).ok());

  std::string trailing = blob + std::string(4, '\0');
  EXPECT_FALSE(BlockMaxIndex::Deserialize(trailing).ok());

  // The untouched blob still loads (the mutations above were the cause).
  EXPECT_TRUE(BlockMaxIndex::Deserialize(blob).ok());
}

TEST(BlockIndexSerdeRejects, MismatchedIndexRefused) {
  InvertedIndex a = BuildSyntheticIndex(41, 80);
  InvertedIndex b = BuildSyntheticIndex(43, 90);
  const std::string blob_a = a.SerializeBlockIndex();
  Status s = b.LoadBlockIndex(blob_a);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace ckr
