// Unit tests for ckr_text: tokenizer, Porter stemmer, stop words, HTML,
// sentence/paragraph/window detection.
#include <gtest/gtest.h>

#include "text/html.h"
#include "text/porter_stemmer.h"
#include "text/sentence.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace ckr {
namespace {

TEST(PorterTest, ClassicExamples) {
  // Reference pairs from Porter's paper and the canonical test vocabulary.
  EXPECT_EQ(PorterStem("caresses"), "caress");
  EXPECT_EQ(PorterStem("ponies"), "poni");
  EXPECT_EQ(PorterStem("ties"), "ti");
  EXPECT_EQ(PorterStem("caress"), "caress");
  EXPECT_EQ(PorterStem("cats"), "cat");
  EXPECT_EQ(PorterStem("feed"), "feed");
  EXPECT_EQ(PorterStem("agreed"), "agre");
  EXPECT_EQ(PorterStem("plastered"), "plaster");
  EXPECT_EQ(PorterStem("bled"), "bled");
  EXPECT_EQ(PorterStem("motoring"), "motor");
  EXPECT_EQ(PorterStem("sing"), "sing");
  EXPECT_EQ(PorterStem("conflated"), "conflat");
  EXPECT_EQ(PorterStem("troubled"), "troubl");
  EXPECT_EQ(PorterStem("sized"), "size");
  EXPECT_EQ(PorterStem("hopping"), "hop");
  EXPECT_EQ(PorterStem("tanned"), "tan");
  EXPECT_EQ(PorterStem("falling"), "fall");
  EXPECT_EQ(PorterStem("hissing"), "hiss");
  EXPECT_EQ(PorterStem("fizzed"), "fizz");
  EXPECT_EQ(PorterStem("failing"), "fail");
  EXPECT_EQ(PorterStem("filing"), "file");
  EXPECT_EQ(PorterStem("happy"), "happi");
  EXPECT_EQ(PorterStem("sky"), "sky");
  EXPECT_EQ(PorterStem("relational"), "relat");
  EXPECT_EQ(PorterStem("conditional"), "condit");
  EXPECT_EQ(PorterStem("rational"), "ration");
  EXPECT_EQ(PorterStem("valenci"), "valenc");
  EXPECT_EQ(PorterStem("hesitanci"), "hesit");
  EXPECT_EQ(PorterStem("digitizer"), "digit");
  EXPECT_EQ(PorterStem("conformabli"), "conform");
  EXPECT_EQ(PorterStem("radicalli"), "radic");
  EXPECT_EQ(PorterStem("differentli"), "differ");
  EXPECT_EQ(PorterStem("vileli"), "vile");
  EXPECT_EQ(PorterStem("analogousli"), "analog");
  EXPECT_EQ(PorterStem("vietnamization"), "vietnam");
  EXPECT_EQ(PorterStem("predication"), "predic");
  EXPECT_EQ(PorterStem("operator"), "oper");
  EXPECT_EQ(PorterStem("feudalism"), "feudal");
  EXPECT_EQ(PorterStem("decisiveness"), "decis");
  EXPECT_EQ(PorterStem("hopefulness"), "hope");
  EXPECT_EQ(PorterStem("callousness"), "callous");
  EXPECT_EQ(PorterStem("formaliti"), "formal");
  EXPECT_EQ(PorterStem("sensitiviti"), "sensit");
  EXPECT_EQ(PorterStem("sensibiliti"), "sensibl");
  EXPECT_EQ(PorterStem("triplicate"), "triplic");
  EXPECT_EQ(PorterStem("formative"), "form");
  EXPECT_EQ(PorterStem("formalize"), "formal");
  EXPECT_EQ(PorterStem("electriciti"), "electr");
  EXPECT_EQ(PorterStem("electrical"), "electr");
  EXPECT_EQ(PorterStem("hopeful"), "hope");
  EXPECT_EQ(PorterStem("goodness"), "good");
  EXPECT_EQ(PorterStem("revival"), "reviv");
  EXPECT_EQ(PorterStem("allowance"), "allow");
  EXPECT_EQ(PorterStem("inference"), "infer");
  EXPECT_EQ(PorterStem("airliner"), "airlin");
  EXPECT_EQ(PorterStem("gyroscopic"), "gyroscop");
  EXPECT_EQ(PorterStem("adjustable"), "adjust");
  EXPECT_EQ(PorterStem("defensible"), "defens");
  EXPECT_EQ(PorterStem("irritant"), "irrit");
  EXPECT_EQ(PorterStem("replacement"), "replac");
  EXPECT_EQ(PorterStem("adjustment"), "adjust");
  EXPECT_EQ(PorterStem("dependent"), "depend");
  EXPECT_EQ(PorterStem("adoption"), "adopt");
  EXPECT_EQ(PorterStem("homologou"), "homolog");
  EXPECT_EQ(PorterStem("communism"), "commun");
  EXPECT_EQ(PorterStem("activate"), "activ");
  EXPECT_EQ(PorterStem("angulariti"), "angular");
  EXPECT_EQ(PorterStem("homologous"), "homolog");
  EXPECT_EQ(PorterStem("effective"), "effect");
  EXPECT_EQ(PorterStem("bowdlerize"), "bowdler");
  EXPECT_EQ(PorterStem("probate"), "probat");
  EXPECT_EQ(PorterStem("rate"), "rate");
  EXPECT_EQ(PorterStem("cease"), "ceas");
  EXPECT_EQ(PorterStem("controll"), "control");
  EXPECT_EQ(PorterStem("roll"), "roll");
}

TEST(PorterTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("at"), "at");
  EXPECT_EQ(PorterStem("by"), "by");
  EXPECT_EQ(PorterStem(""), "");
  EXPECT_EQ(PorterStem("a"), "a");
}

TEST(PorterTest, NonAlphaUnchanged) {
  EXPECT_EQ(PorterStem("123"), "123");
  EXPECT_EQ(PorterStem("usa2008"), "usa2008");
  EXPECT_EQ(PorterStem("Caps"), "Caps");
}

TEST(PorterTest, IdempotentOnCommonWords) {
  // Property: stemming a stem should not change it for a broad sample.
  const char* words[] = {"running",  "jumped",   "happily", "nationalism",
                         "generalization", "hopefulness", "relational",
                         "political", "arguments", "insurance"};
  for (const char* w : words) {
    std::string once = PorterStem(w);
    EXPECT_EQ(PorterStem(once), once) << "word: " << w;
  }
}

TEST(StopwordsTest, CommonWordsAreStopWords) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("and"));
  EXPECT_TRUE(IsStopWord("of"));
  EXPECT_FALSE(IsStopWord("president"));
  EXPECT_FALSE(IsStopWord(""));
  EXPECT_GT(StopWordSet().size(), 100u);
}

TEST(TokenizerTest, BasicSplitAndNormalize) {
  auto toks = TokenizeToStrings("President Bush's position, was (similar).");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0], "president");
  EXPECT_EQ(toks[1], "bush");
  EXPECT_EQ(toks[2], "position");
  EXPECT_EQ(toks[4], "similar");
}

TEST(TokenizerTest, OffsetsPointIntoSource) {
  std::string text = "  Hello,  world! ";
  auto toks = Tokenize(text);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(text.substr(toks[0].begin, toks[0].end - toks[0].begin), "Hello");
  EXPECT_EQ(text.substr(toks[1].begin, toks[1].end - toks[1].begin), "world");
  EXPECT_EQ(toks[0].text, "hello");
  EXPECT_EQ(toks[1].raw, "world");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \n\t ").empty());
  EXPECT_TRUE(Tokenize("... !!! ,,,").empty());
}

TEST(TokenizerTest, NumberFiltering) {
  TokenizerOptions keep;
  TokenizerOptions drop;
  drop.keep_numbers = false;
  EXPECT_EQ(TokenizeToStrings("room 42 ready", keep).size(), 3u);
  EXPECT_EQ(TokenizeToStrings("room 42 ready", drop).size(), 2u);
}

TEST(TokenizerTest, NormalizePhrase) {
  EXPECT_EQ(NormalizePhrase("  New   York,  Sen. Clinton "),
            "new york sen clinton");
  EXPECT_EQ(NormalizePhrase(""), "");
}

TEST(TokenizerTest, StemPhrase) {
  EXPECT_EQ(StemPhrase("running dogs"), "run dog");
}

TEST(HtmlTest, StripsTagsAndComments) {
  EXPECT_EQ(StripHtml("<b>bold</b> text"), "bold text");
  EXPECT_EQ(StripHtml("a<!-- hidden -->b"), "ab");
}

TEST(HtmlTest, BlockTagsBecomeNewlines) {
  std::string out = StripHtml("<p>one</p><p>two</p>");
  EXPECT_NE(out.find('\n'), std::string::npos);
  EXPECT_NE(out.find("one"), std::string::npos);
  EXPECT_NE(out.find("two"), std::string::npos);
}

TEST(HtmlTest, ScriptAndStyleBodiesDropped) {
  std::string out =
      StripHtml("before<script>var x = '<nasty>';</script>after"
                "<style>.a{color:red}</style>end");
  EXPECT_EQ(out, "beforeafterend");
}

TEST(HtmlTest, EntityDecoding) {
  EXPECT_EQ(StripHtml("a &amp; b &lt;c&gt; &quot;d&quot; &#65;"),
            "a & b <c> \"d\" A");
  EXPECT_EQ(StripHtml("AT&T"), "AT&T");  // Bare ampersand survives.
}

TEST(HtmlTest, EscapeRoundTrip) {
  std::string raw = "a & b < c > \"d\"";
  EXPECT_EQ(StripHtml(EscapeHtml(raw)), raw);
}

TEST(SentenceTest, SplitsOnTerminators) {
  auto spans = DetectSentences("First one. Second one! Third?");
  ASSERT_EQ(spans.size(), 3u);
}

TEST(SentenceTest, AbbreviationsDoNotSplit) {
  std::string text = "Sen. Clinton met Mr. Obama in Texas. They talked.";
  auto spans = DetectSentences(text);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(text.substr(spans[0].begin, spans[0].size()),
            "Sen. Clinton met Mr. Obama in Texas.");
}

TEST(SentenceTest, DecimalsDoNotSplit) {
  auto spans = DetectSentences("It grew 3.5 percent. Good.");
  ASSERT_EQ(spans.size(), 2u);
}

TEST(SentenceTest, SingleInitialDoesNotSplit) {
  auto spans = DetectSentences("John F. Kennedy spoke. Then left.");
  ASSERT_EQ(spans.size(), 2u);
}

TEST(ParagraphTest, BlankLineSplits) {
  auto spans = DetectParagraphs("para one line.\n\npara two line.");
  ASSERT_EQ(spans.size(), 2u);
}

TEST(ParagraphTest, SingleNewlineDoesNotSplit) {
  auto spans = DetectParagraphs("line one\nline two");
  ASSERT_EQ(spans.size(), 1u);
}

TEST(WindowTest, ShortDocSingleWindow) {
  auto w = PartitionIntoWindows(1000, 2500, 500);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].begin, 0u);
  EXPECT_EQ(w[0].end, 1000u);
}

TEST(WindowTest, PaperParameters) {
  // 2500-char windows with 500-char overlap => stride 2000.
  auto w = PartitionIntoWindows(6000, 2500, 500);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].begin, 0u);
  EXPECT_EQ(w[0].end, 2500u);
  EXPECT_EQ(w[1].begin, 2000u);
  EXPECT_EQ(w[1].end, 4500u);
  EXPECT_EQ(w[2].begin, 4000u);
  EXPECT_EQ(w[2].end, 6000u);
}

TEST(WindowTest, ConsecutiveWindowsOverlap) {
  auto w = PartitionIntoWindows(10000, 2500, 500);
  for (size_t i = 1; i < w.size(); ++i) {
    EXPECT_EQ(w[i - 1].end - w[i].begin, 500u) << "at window " << i;
  }
  EXPECT_EQ(w.back().end, 10000u);
}

TEST(WindowTest, EmptyText) {
  EXPECT_TRUE(PartitionIntoWindows(0).empty());
}

TEST(TokenizeIntoTest, MatchesTokenizeAndReusesBuffer) {
  const std::vector<std::string> samples = {
      "",
      "The Quick (Brown) Fox's 42 jumps, over http://x.y!",
      "  leading   and trailing  ",
      "O'Neill's co-worker visited San Francisco-based start-ups.",
      "ALL CAPS and miXeD CaSe tokens 123abc",
  };
  std::vector<Token> reused;  // Deliberately reused across iterations.
  for (const std::string& text : samples) {
    TokenizeInto(text, &reused);
    EXPECT_EQ(reused, Tokenize(text)) << "text: " << text;
  }
  // A longer document followed by a shorter one must not leak stale slots.
  TokenizeInto("one two three four five six", &reused);
  TokenizeInto("tiny", &reused);
  EXPECT_EQ(reused, Tokenize("tiny"));
}

TEST(PorterStemIntoTest, MatchesPorterStem) {
  std::string buf;  // Reused across calls like the runtime scratch does.
  for (const char* word :
       {"caresses", "ponies", "running", "a", "it", "xyz", "Mixed", "42",
        "relational", "internationalization", ""}) {
    PorterStemInto(word, &buf);
    EXPECT_EQ(buf, PorterStem(word)) << "word: " << word;
  }
}

TEST(WindowTest, CoverageProperty) {
  // Property: windows cover every byte for many sizes.
  for (size_t size : {1u, 499u, 2500u, 2501u, 4999u, 12345u}) {
    auto w = PartitionIntoWindows(size, 2500, 500);
    ASSERT_FALSE(w.empty());
    EXPECT_EQ(w.front().begin, 0u);
    EXPECT_EQ(w.back().end, size);
    for (size_t i = 1; i < w.size(); ++i) {
      EXPECT_LE(w[i].begin, w[i - 1].end) << "gap at " << i;
    }
  }
}

}  // namespace
}  // namespace ckr
