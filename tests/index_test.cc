// Unit tests for ckr_index: postings, BM25 search, phrase search, snippets.
#include <gtest/gtest.h>

#include "corpus/document.h"
#include "index/inverted_index.h"

namespace ckr {
namespace {

Document MakeDoc(DocId id, std::string text) {
  Document d;
  d.id = id;
  d.text = std::move(text);
  return d;
}

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_.Add(MakeDoc(0, "the quick brown fox jumps over the lazy dog"));
    index_.Add(MakeDoc(1, "quick brown foxes are quick and brown"));
    index_.Add(MakeDoc(2, "the lazy dog sleeps all day long today"));
    index_.Add(MakeDoc(3, "a completely unrelated document about turtles"));
    index_.Finalize();
  }
  InvertedIndex index_;
};

TEST_F(IndexTest, DocFreq) {
  EXPECT_EQ(index_.DocFreq("quick"), 2u);
  EXPECT_EQ(index_.DocFreq("dog"), 2u);
  EXPECT_EQ(index_.DocFreq("turtles"), 1u);
  EXPECT_EQ(index_.DocFreq("absent"), 0u);
  EXPECT_EQ(index_.NumDocs(), 4u);
}

TEST_F(IndexTest, SearchRanksMatchingDocsFirst) {
  auto results = index_.Search("quick brown", 10);
  ASSERT_GE(results.size(), 2u);
  // Doc 1 has double occurrences of both terms: should rank first.
  EXPECT_EQ(results[0].doc, 1u);
  EXPECT_GT(results[0].score, results[1].score);
  for (const auto& r : results) EXPECT_NE(r.doc, 3u);
}

TEST_F(IndexTest, SearchRespectsK) {
  auto results = index_.Search("the", 1);
  EXPECT_EQ(results.size(), 1u);
}

TEST_F(IndexTest, SearchUnknownTermsEmpty) {
  EXPECT_TRUE(index_.Search("zzz qqq", 10).empty());
  EXPECT_TRUE(index_.Search("", 10).empty());
}

TEST_F(IndexTest, PhraseSearchRequiresAdjacency) {
  // "quick brown" is contiguous in docs 0 and 1.
  EXPECT_EQ(index_.PhraseResultCount("quick brown"), 2u);
  // "quick dog" never occurs contiguously though both terms exist.
  EXPECT_EQ(index_.PhraseResultCount("quick dog"), 0u);
  // Order matters.
  EXPECT_EQ(index_.PhraseResultCount("brown quick"), 0u);
}

TEST_F(IndexTest, PhraseSearchSingleTerm) {
  EXPECT_EQ(index_.PhraseResultCount("lazy"), 2u);
}

TEST_F(IndexTest, PhraseSearchNormalizesCase) {
  EXPECT_EQ(index_.PhraseResultCount("Quick BROWN"), 2u);
}

TEST_F(IndexTest, SnippetContainsQueryTerm) {
  auto results = index_.PhraseSearch("lazy dog", 10);
  ASSERT_FALSE(results.empty());
  std::string snippet = index_.Snippet(results[0].doc, "lazy dog");
  EXPECT_NE(snippet.find("lazy dog"), std::string::npos);
}

TEST_F(IndexTest, SnippetForUnknownDocEmpty) {
  EXPECT_EQ(index_.Snippet(999, "anything"), "");
}

TEST_F(IndexTest, SnippetWindowBounded) {
  std::string snippet = index_.Snippet(0, "fox", 4);
  // 4-token window: should be much shorter than the document.
  EXPECT_LT(snippet.size(), index_.DocText(0).size());
  EXPECT_NE(snippet.find("fox"), std::string::npos);
}

TEST_F(IndexTest, DocTextRoundTrip) {
  EXPECT_EQ(index_.DocText(3), "a completely unrelated document about turtles");
  EXPECT_EQ(index_.DocText(12345), "");
}

TEST(IndexLargeTest, PhraseCountMatchesBruteForce) {
  // Property test: phrase counts agree with a brute-force scan.
  InvertedIndex index;
  std::vector<std::string> texts = {
      "a b c a b", "b c a", "c c c a b c", "a a a", "b a b a b",
  };
  for (size_t i = 0; i < texts.size(); ++i) {
    index.Add(MakeDoc(static_cast<DocId>(i), texts[i]));
  }
  index.Finalize();
  const char* phrases[] = {"a b", "b c", "c a", "a b c", "b a b", "c c"};
  for (const char* phrase : phrases) {
    uint64_t brute = 0;
    for (const std::string& t : texts) {
      if ((" " + t + " ").find(" " + std::string(phrase) + " ") !=
          std::string::npos) {
        ++brute;
      }
    }
    EXPECT_EQ(index.PhraseResultCount(phrase), brute) << phrase;
  }
}

TEST(IndexLargeTest, Bm25PrefersRareTerms) {
  InvertedIndex index;
  // "rare" appears once; "common" appears everywhere.
  index.Add(MakeDoc(0, "common words common words rare"));
  for (DocId i = 1; i < 20; ++i) {
    index.Add(MakeDoc(i, "common words again and again"));
  }
  index.Finalize();
  auto results = index.Search("rare common", 20);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].doc, 0u);
  EXPECT_GT(results[0].score, 2.0 * results[1].score);
}

TEST(IndexLargeTest, DeterministicTieBreak) {
  // Ranking contract (inverted_index.h): descending score, equal scores
  // broken by ascending external doc id — a total order every evaluator
  // (exhaustive, MaxScore, Block-Max-WAND) must honor, including when the
  // tie straddles the k-th slot.
  InvertedIndex index;
  index.Add(MakeDoc(5, "same text here"));
  index.Add(MakeDoc(2, "same text here"));
  index.Add(MakeDoc(9, "same text here"));
  index.Finalize();
  for (QueryEvaluator evaluator :
       {QueryEvaluator::kExhaustive, QueryEvaluator::kMaxScore,
        QueryEvaluator::kBlockMaxWand}) {
    auto results = index.Search("same text", 3, Bm25Params{}, evaluator);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].doc, 2u);  // Equal scores: ordered by doc id.
    EXPECT_EQ(results[1].doc, 5u);
    EXPECT_EQ(results[2].doc, 9u);
    EXPECT_EQ(results[0].score, results[2].score);

    // k below the tie width: the heap must keep the *smallest* doc ids of
    // the tied band, not whichever arrived first.
    auto top2 = index.Search("same text", 2, Bm25Params{}, evaluator);
    ASSERT_EQ(top2.size(), 2u);
    EXPECT_EQ(top2[0].doc, 2u);
    EXPECT_EQ(top2[1].doc, 5u);
  }
}

}  // namespace
}  // namespace ckr
