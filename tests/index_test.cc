// Unit tests for ckr_index: postings, BM25 search, phrase search, snippets.
#include <gtest/gtest.h>

#include "corpus/document.h"
#include "index/inverted_index.h"

namespace ckr {
namespace {

Document MakeDoc(DocId id, std::string text) {
  Document d;
  d.id = id;
  d.text = std::move(text);
  return d;
}

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_.Add(MakeDoc(0, "the quick brown fox jumps over the lazy dog"));
    index_.Add(MakeDoc(1, "quick brown foxes are quick and brown"));
    index_.Add(MakeDoc(2, "the lazy dog sleeps all day long today"));
    index_.Add(MakeDoc(3, "a completely unrelated document about turtles"));
    index_.Finalize();
  }
  InvertedIndex index_;
};

TEST_F(IndexTest, DocFreq) {
  EXPECT_EQ(index_.DocFreq("quick"), 2u);
  EXPECT_EQ(index_.DocFreq("dog"), 2u);
  EXPECT_EQ(index_.DocFreq("turtles"), 1u);
  EXPECT_EQ(index_.DocFreq("absent"), 0u);
  EXPECT_EQ(index_.NumDocs(), 4u);
}

TEST_F(IndexTest, SearchRanksMatchingDocsFirst) {
  auto results = index_.Search("quick brown", 10);
  ASSERT_GE(results.size(), 2u);
  // Doc 1 has double occurrences of both terms: should rank first.
  EXPECT_EQ(results[0].doc, 1u);
  EXPECT_GT(results[0].score, results[1].score);
  for (const auto& r : results) EXPECT_NE(r.doc, 3u);
}

TEST_F(IndexTest, SearchRespectsK) {
  auto results = index_.Search("the", 1);
  EXPECT_EQ(results.size(), 1u);
}

TEST_F(IndexTest, SearchUnknownTermsEmpty) {
  EXPECT_TRUE(index_.Search("zzz qqq", 10).empty());
  EXPECT_TRUE(index_.Search("", 10).empty());
}

TEST_F(IndexTest, PhraseSearchRequiresAdjacency) {
  // "quick brown" is contiguous in docs 0 and 1.
  EXPECT_EQ(index_.PhraseResultCount("quick brown"), 2u);
  // "quick dog" never occurs contiguously though both terms exist.
  EXPECT_EQ(index_.PhraseResultCount("quick dog"), 0u);
  // Order matters.
  EXPECT_EQ(index_.PhraseResultCount("brown quick"), 0u);
}

TEST_F(IndexTest, PhraseSearchSingleTerm) {
  EXPECT_EQ(index_.PhraseResultCount("lazy"), 2u);
}

TEST_F(IndexTest, PhraseSearchNormalizesCase) {
  EXPECT_EQ(index_.PhraseResultCount("Quick BROWN"), 2u);
}

TEST_F(IndexTest, SnippetContainsQueryTerm) {
  auto results = index_.PhraseSearch("lazy dog", 10);
  ASSERT_FALSE(results.empty());
  std::string snippet = index_.Snippet(results[0].doc, "lazy dog");
  EXPECT_NE(snippet.find("lazy dog"), std::string::npos);
}

TEST_F(IndexTest, SnippetForUnknownDocEmpty) {
  EXPECT_EQ(index_.Snippet(999, "anything"), "");
}

TEST_F(IndexTest, SnippetWindowBounded) {
  std::string snippet = index_.Snippet(0, "fox", 4);
  // 4-token window: should be much shorter than the document.
  EXPECT_LT(snippet.size(), index_.DocText(0).size());
  EXPECT_NE(snippet.find("fox"), std::string::npos);
}

TEST_F(IndexTest, DocTextRoundTrip) {
  EXPECT_EQ(index_.DocText(3), "a completely unrelated document about turtles");
  EXPECT_EQ(index_.DocText(12345), "");
}

TEST(IndexLargeTest, PhraseCountMatchesBruteForce) {
  // Property test: phrase counts agree with a brute-force scan.
  InvertedIndex index;
  std::vector<std::string> texts = {
      "a b c a b", "b c a", "c c c a b c", "a a a", "b a b a b",
  };
  for (size_t i = 0; i < texts.size(); ++i) {
    index.Add(MakeDoc(static_cast<DocId>(i), texts[i]));
  }
  index.Finalize();
  const char* phrases[] = {"a b", "b c", "c a", "a b c", "b a b", "c c"};
  for (const char* phrase : phrases) {
    uint64_t brute = 0;
    for (const std::string& t : texts) {
      if ((" " + t + " ").find(" " + std::string(phrase) + " ") !=
          std::string::npos) {
        ++brute;
      }
    }
    EXPECT_EQ(index.PhraseResultCount(phrase), brute) << phrase;
  }
}

TEST(IndexLargeTest, Bm25PrefersRareTerms) {
  InvertedIndex index;
  // "rare" appears once; "common" appears everywhere.
  index.Add(MakeDoc(0, "common words common words rare"));
  for (DocId i = 1; i < 20; ++i) {
    index.Add(MakeDoc(i, "common words again and again"));
  }
  index.Finalize();
  auto results = index.Search("rare common", 20);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].doc, 0u);
  EXPECT_GT(results[0].score, 2.0 * results[1].score);
}

TEST(IndexLargeTest, DeterministicTieBreak) {
  // Ranking contract (inverted_index.h): descending score, equal scores
  // broken by ascending external doc id — a total order every evaluator
  // (exhaustive, MaxScore, Block-Max-WAND) must honor, including when the
  // tie straddles the k-th slot.
  InvertedIndex index;
  index.Add(MakeDoc(5, "same text here"));
  index.Add(MakeDoc(2, "same text here"));
  index.Add(MakeDoc(9, "same text here"));
  index.Finalize();
  for (QueryEvaluator evaluator :
       {QueryEvaluator::kExhaustive, QueryEvaluator::kMaxScore,
        QueryEvaluator::kBlockMaxWand}) {
    auto results = index.Search("same text", 3, Bm25Params{}, evaluator);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].doc, 2u);  // Equal scores: ordered by doc id.
    EXPECT_EQ(results[1].doc, 5u);
    EXPECT_EQ(results[2].doc, 9u);
    EXPECT_EQ(results[0].score, results[2].score);

    // k below the tie width: the heap must keep the *smallest* doc ids of
    // the tied band, not whichever arrived first.
    auto top2 = index.Search("same text", 2, Bm25Params{}, evaluator);
    ASSERT_EQ(top2.size(), 2u);
    EXPECT_EQ(top2[0].doc, 2u);
    EXPECT_EQ(top2[1].doc, 5u);
  }
}

TEST(IndexOptionsTest, PhraseContractHoldsWithoutStoredText) {
  // store_text=false drops raw text and offsets only; token streams and
  // the position pool are always retained, so every phrase and search
  // result is bit-identical to the store_text=true build. Snippet and
  // DocText degrade to "" instead of failing — the documented contract.
  InvertedIndex full;
  IndexBuildOptions lean_opts;
  lean_opts.store_text = false;
  InvertedIndex lean(lean_opts);
  const char* texts[] = {"the quick brown fox", "quick brown foxes run",
                         "brown the quick", "nothing in common"};
  for (DocId d = 0; d < 4; ++d) {
    full.Add(MakeDoc(d * 2 + 1, texts[d]));
    lean.Add(MakeDoc(d * 2 + 1, texts[d]));
  }
  full.Finalize();
  lean.Finalize();

  for (const char* phrase :
       {"quick brown", "brown fox", "the quick brown", "quick the", "",
        "   ", "zzz", "quick zzz", "quick"}) {
    EXPECT_EQ(lean.PhraseResultCount(phrase), full.PhraseResultCount(phrase))
        << phrase;
    const auto a = lean.PhraseSearch(phrase, 10);
    const auto b = full.PhraseSearch(phrase, 10);
    ASSERT_EQ(a.size(), b.size()) << phrase;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc, b[i].doc) << phrase;
      EXPECT_EQ(a[i].score, b[i].score) << phrase;
    }
  }
  const auto a = lean.Search("quick brown", 10);
  const auto b = full.Search("quick brown", 10);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].doc, b[i].doc);

  // The degraded accessors return "" (not a crash, not stale bytes).
  EXPECT_EQ(lean.DocText(1), "");
  EXPECT_EQ(lean.Snippet(1, "quick", 30), "");
  EXPECT_NE(full.DocText(1), "");
}

TEST(IndexOptionsTest, PhraseContractHoldsWithDeferredBlockIndex) {
  // build_block_index=false defers the pruning structure; phrase paths
  // never touch it, so counts and hits are identical before the deferred
  // RebuildBlockIndex() and unchanged after it. Pruned evaluators fall
  // back to the exhaustive scorer while it is absent.
  IndexBuildOptions deferred_opts;
  deferred_opts.build_block_index = false;
  InvertedIndex deferred(deferred_opts);
  InvertedIndex eager;
  const char* texts[] = {"alpha beta gamma", "beta gamma delta",
                         "gamma alpha beta"};
  for (DocId d = 0; d < 3; ++d) {
    deferred.Add(MakeDoc(d, texts[d]));
    eager.Add(MakeDoc(d, texts[d]));
  }
  deferred.Finalize();
  eager.Finalize();
  ASSERT_FALSE(deferred.has_block_index());
  ASSERT_TRUE(eager.has_block_index());

  auto expect_phrases_match = [&](const InvertedIndex& idx) {
    for (const char* phrase :
         {"beta gamma", "alpha beta", "gamma delta", "delta alpha", "",
          "zzz beta"}) {
      EXPECT_EQ(idx.PhraseResultCount(phrase),
                eager.PhraseResultCount(phrase))
          << phrase;
      const auto a = idx.PhraseSearch(phrase, 5);
      const auto b = eager.PhraseSearch(phrase, 5);
      ASSERT_EQ(a.size(), b.size()) << phrase;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].doc, b[i].doc) << phrase;
        EXPECT_EQ(a[i].score, b[i].score) << phrase;
      }
    }
  };
  expect_phrases_match(deferred);
  // Pruned evaluators route through the exhaustive scorer while the block
  // index is deferred — same results, no crash.
  for (QueryEvaluator evaluator :
       {QueryEvaluator::kMaxScore, QueryEvaluator::kBlockMaxWand}) {
    const auto a = deferred.Search("beta gamma", 5, Bm25Params{}, evaluator);
    const auto b = eager.Search("beta gamma", 5, Bm25Params{}, evaluator);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].doc, b[i].doc);
  }

  deferred.RebuildBlockIndex(deferred_opts.block_codec);
  ASSERT_TRUE(deferred.has_block_index());
  expect_phrases_match(deferred);
}

TEST(IndexOptionsTest, PhraseEarlyExitsOnEmptyAndOovInput) {
  // The ResolvePhrase early exits (inverted_index.cc): empty input,
  // whitespace-only input, and any out-of-vocabulary term resolve to "no
  // results" across both phrase entry points — with or without the
  // signature prefilter in front of them.
  for (bool with_signatures : {true, false}) {
    IndexBuildOptions opts;
    opts.build_signature_filter = with_signatures;
    InvertedIndex index(opts);
    index.Add(MakeDoc(7, "only one document here"));
    index.Finalize();
    for (const char* phrase : {"", "   ", "\t\n", "missing", "one missing"}) {
      EXPECT_EQ(index.PhraseResultCount(phrase), 0u)
          << "sig=" << with_signatures << " phrase='" << phrase << "'";
      EXPECT_TRUE(index.PhraseSearch(phrase, 10).empty())
          << "sig=" << with_signatures << " phrase='" << phrase << "'";
    }
    EXPECT_EQ(index.PhraseResultCount("one document"), 1u);
  }
}

}  // namespace
}  // namespace ckr
