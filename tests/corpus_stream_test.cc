// Tests for the streaming corpus generator and the ORCAS-regime click
// log: worker-count/chunk-size independence (the counter-seeded RNG
// discipline), run-to-run determinism, scaled-world shapes, and the
// aggregate statistics the bench scale legs record.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "clicks/click_log.h"
#include "corpus/corpus_stream.h"
#include "corpus/doc_generator.h"
#include "corpus/document.h"
#include "corpus/world.h"

namespace ckr {
namespace {

WorldConfig SmallStreamConfig() {
  WorldConfig cfg;
  cfg.num_topics = 6;
  cfg.background_vocab = 600;
  cfg.words_per_topic = 40;
  cfg.num_named_entities = 120;
  cfg.num_concepts = 80;
  cfg.num_generic_concepts = 12;
  cfg.num_web_docs = 60;
  cfg.num_news_stories = 0;
  cfg.num_answers_snippets = 0;
  return cfg;
}

std::vector<Document> Collect(const CorpusStreamer& streamer, size_t count,
                              size_t chunk_docs, unsigned workers) {
  CorpusStreamConfig cfg;
  cfg.chunk_docs = chunk_docs;
  cfg.workers = workers;
  std::vector<Document> out;
  Status s = streamer.Stream(Document::Kind::kWeb, count, cfg,
                             [&](Document&& d) { out.push_back(std::move(d)); });
  EXPECT_TRUE(s.ok()) << s.message();
  return out;
}

void ExpectSameCorpus(const std::vector<Document>& a,
                      const std::vector<Document>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].id, b[i].id) << i;
    ASSERT_EQ(a[i].topic, b[i].topic) << i;
    ASSERT_EQ(a[i].text, b[i].text) << i;
    ASSERT_EQ(a[i].mentions.size(), b[i].mentions.size()) << i;
  }
}

TEST(CorpusStreamTest, MatchesDirectGenerationInIdOrder) {
  auto world_or = World::Create(SmallStreamConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status().message();
  const World& world = *world_or.value();
  CorpusStreamer streamer(world);
  const size_t count = 150;
  std::vector<Document> streamed = Collect(streamer, count, 64, 1);
  ASSERT_EQ(streamed.size(), count);
  DocGenerator gen(world);
  for (size_t i = 0; i < count; ++i) {
    Document direct = gen.Generate(Document::Kind::kWeb,
                                   static_cast<DocId>(i));
    EXPECT_EQ(streamed[i].id, direct.id);
    EXPECT_EQ(streamed[i].text, direct.text);
    EXPECT_EQ(streamed[i].topic, direct.topic);
  }
}

TEST(CorpusStreamTest, ByteIdenticalAcrossWorkersChunksAndRuns) {
  auto world_or = World::Create(SmallStreamConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status().message();
  const World& world = *world_or.value();
  CorpusStreamer streamer(world);
  const size_t count = 200;
  std::vector<Document> base = Collect(streamer, count, 64, 1);
  ExpectSameCorpus(base, Collect(streamer, count, 64, 2));
  ExpectSameCorpus(base, Collect(streamer, count, 64, 4));
  ExpectSameCorpus(base, Collect(streamer, count, 17, 4));   // Ragged chunks.
  ExpectSameCorpus(base, Collect(streamer, count, 1024, 3)); // One chunk.
  ExpectSameCorpus(base, Collect(streamer, count, 64, 1));   // Second run.
}

TEST(CorpusStreamTest, ZeroChunkIsInvalidArgument) {
  auto world_or = World::Create(SmallStreamConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status().message();
  const World& world = *world_or.value();
  CorpusStreamer streamer(world);
  CorpusStreamConfig cfg;
  cfg.chunk_docs = 0;
  Status s = streamer.Stream(Document::Kind::kWeb, 10, cfg,
                             [](Document&&) {});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CorpusStreamTest, DocTopicAgreesWithGenerate) {
  auto world_or = World::Create(SmallStreamConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status().message();
  const World& world = *world_or.value();
  DocGenerator gen(world);
  for (DocId id = 0; id < 120; ++id) {
    Document doc = gen.Generate(Document::Kind::kWeb, id);
    EXPECT_EQ(gen.DocTopic(Document::Kind::kWeb, id), doc.topic) << id;
  }
}

TEST(ScaledWorldConfigTest, PaperScaleKeepsBaseUniverse) {
  WorldConfig cfg = ScaledWorldConfig(6000, 42);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.num_web_docs, 6000u);
  EXPECT_EQ(cfg.num_news_stories, 0u);
  EXPECT_EQ(cfg.num_answers_snippets, 0u);
  EXPECT_EQ(cfg.num_topics, WorldConfig{}.num_topics);
  EXPECT_EQ(cfg.num_named_entities, WorldConfig{}.num_named_entities);
}

TEST(ScaledWorldConfigTest, UniverseGrowsSublinearly) {
  WorldConfig small = ScaledWorldConfig(6000, 1);
  WorldConfig big = ScaledWorldConfig(600000, 1);
  // 100x the docs grows the universe, but far less than 100x (cube root).
  EXPECT_GT(big.num_topics, small.num_topics);
  EXPECT_GT(big.num_named_entities, small.num_named_entities);
  EXPECT_GT(big.num_concepts, small.num_concepts);
  EXPECT_LT(big.num_named_entities, small.num_named_entities * 10);
  // Web docs shorten to the snippet regime at scale.
  EXPECT_LE(big.web_doc_max_tokens, 180u);
}

// ---------- Click log ----------

std::vector<ClickRecord> CollectClicks(const ClickLogGenerator& log) {
  std::vector<ClickRecord> out;
  Status s = log.Stream([&](Span<const ClickRecord> chunk) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  });
  EXPECT_TRUE(s.ok()) << s.message();
  return out;
}

void ExpectSameLog(const std::vector<ClickRecord>& a,
                   const std::vector<ClickRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].user, b[i].user) << i;
    ASSERT_EQ(a[i].query, b[i].query) << i;
    ASSERT_EQ(a[i].doc, b[i].doc) << i;
  }
}

TEST(ClickLogTest, IdenticalAcrossWorkersChunksAndRuns) {
  auto world_or = World::Create(SmallStreamConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status().message();
  const World& world = *world_or.value();
  ClickLogConfig cfg;
  cfg.num_pairs = 5000;
  cfg.num_users = 512;
  ClickLogConfig cfg2 = cfg;
  cfg2.workers = 2;
  cfg2.chunk_pairs = 777;
  ClickLogConfig cfg4 = cfg;
  cfg4.workers = 4;
  cfg4.chunk_pairs = 100000;  // Single chunk.
  const size_t docs = 400;
  ClickLogGenerator log1(world, Document::Kind::kWeb, docs, cfg);
  ClickLogGenerator log2(world, Document::Kind::kWeb, docs, cfg2);
  ClickLogGenerator log4(world, Document::Kind::kWeb, docs, cfg4);
  std::vector<ClickRecord> base = CollectClicks(log1);
  ASSERT_EQ(base.size(), 5000u);
  ExpectSameLog(base, CollectClicks(log2));
  ExpectSameLog(base, CollectClicks(log4));
  ExpectSameLog(base, CollectClicks(log1));  // Second run, same generator.
}

TEST(ClickLogTest, RecordsAreInRange) {
  auto world_or = World::Create(SmallStreamConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status().message();
  const World& world = *world_or.value();
  ClickLogConfig cfg;
  cfg.num_pairs = 2000;
  cfg.num_users = 64;
  const size_t docs = 300;
  ClickLogGenerator log(world, Document::Kind::kWeb, docs, cfg);
  for (const ClickRecord& r : CollectClicks(log)) {
    EXPECT_LT(r.user, cfg.num_users);
    EXPECT_LT(r.doc, docs);
    EXPECT_LT(r.query, world.NumEntities());
  }
}

TEST(ClickLogTest, DefaultPairBudgetScalesWithCorpus) {
  auto world_or = World::Create(SmallStreamConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status().message();
  const World& world = *world_or.value();
  ClickLogConfig cfg;  // num_pairs = 0 -> 6x docs.
  ClickLogGenerator log(world, Document::Kind::kWeb, 500, cfg);
  EXPECT_EQ(log.NumPairs(), 3000u);
}

TEST(ClickLogTest, StatsShowOrcasShape) {
  auto world_or = World::Create(SmallStreamConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status().message();
  const World& world = *world_or.value();
  ClickLogConfig cfg;
  cfg.num_pairs = 20000;
  cfg.num_users = 1024;
  const size_t docs = 400;
  ClickLogGenerator log(world, Document::Kind::kWeb, docs, cfg);
  StatusOr<ClickLogStats> stats = CollectClickLogStats(log);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pairs, 20000u);
  // Click mass repeats on a stable head: far fewer distinct pairs than
  // events, and rank bias concentrates each query on a few documents.
  EXPECT_LT(stats->distinct_query_doc_pairs, stats->pairs);
  EXPECT_GT(stats->distinct_queries, 20u);
  EXPECT_GT(stats->distinct_docs, docs / 10);
  EXPECT_LE(stats->distinct_docs, docs);
  // Zipfian users: the population is far from fully represented per log.
  EXPECT_GT(stats->distinct_users, 100u);
  EXPECT_LE(stats->distinct_users, cfg.num_users);
}

TEST(ClickLogTest, ValidateRejectsNonsense) {
  ClickLogConfig cfg;
  cfg.rank_continue = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = ClickLogConfig();
  cfg.num_users = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = ClickLogConfig();
  cfg.off_topic_prob = -0.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = ClickLogConfig();
  cfg.chunk_pairs = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = ClickLogConfig();
  cfg.max_rank = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  EXPECT_TRUE(ClickLogConfig().Validate().ok());
}

}  // namespace
}  // namespace ckr
