// Death-test contract for the debug lock-order registry: a ranked
// acquisition that does not strictly exceed every ranked lock the thread
// already holds must abort on the first single-threaded execution — the
// inversion is caught deterministically, not on the unlucky
// interleaving. This TU pins CKR_ENABLE_DCHECKS (the check_test
// pattern) so the registry is live regardless of the build type;
// check_release_test proves the opposite configuration is a no-op.
#include "common/lock_order.h"

#include <thread>

#include "common/mutex.h"
#include "gtest/gtest.h"

namespace ckr {
namespace {

static_assert(CKR_DEBUG_CHECKS == 1,
              "this TU must build with the registry armed");

TEST(LockOrderRegistryTest, AscendingAcquisitionIsLegal) {
  Mutex low(LockRank::kServeLifecycle);
  Mutex mid(LockRank::kSnapshotRegistry);
  Mutex high(LockRank::kLogSink);
  {
    MutexLock a(&low);
    MutexLock b(&mid);
    MutexLock c(&high);
    EXPECT_EQ(LockOrderRegistry::HeldCountForTesting(), 3u);
  }
  EXPECT_EQ(LockOrderRegistry::HeldCountForTesting(), 0u);
}

TEST(LockOrderRegistryTest, SkippingRanksIsLegal) {
  // The hierarchy is sparse on purpose: lifecycle straight to log.
  Mutex low(LockRank::kServeLifecycle);
  Mutex high(LockRank::kLogSink);
  MutexLock a(&low);
  MutexLock b(&high);
  EXPECT_EQ(LockOrderRegistry::HeldCountForTesting(), 2u);
}

TEST(LockOrderRegistryDeathTest, InversionDies) {
  Mutex low(LockRank::kServeLifecycle);
  Mutex high(LockRank::kMetricsRegistry);
  EXPECT_DEATH(
      {
        MutexLock a(&high);
        MutexLock b(&low);
      },
      "CKR_CHECK failed");
}

TEST(LockOrderRegistryDeathTest, SameRankNestingDies) {
  // Two distinct locks of equal rank: the strict < also forbids this,
  // which doubles as the recursive-acquisition (self-deadlock) check.
  Mutex a(LockRank::kRequestQueue);
  Mutex b(LockRank::kRequestQueue);
  EXPECT_DEATH(
      {
        MutexLock la(&a);
        MutexLock lb(&b);
      },
      "CKR_CHECK failed");
}

TEST(LockOrderRegistryDeathTest, TryLockParticipates) {
  Mutex low(LockRank::kServeLifecycle);
  Mutex high(LockRank::kLogSink);
  EXPECT_DEATH(
      {
        MutexLock a(&high);
        bool locked = low.TryLock();
        if (locked) low.Unlock();
      },
      "CKR_CHECK failed");
}

TEST(LockOrderRegistryDeathTest, ReleasingAnUnheldRankedLockDies) {
  // OnRelease fires before the underlying unlock, so the misuse aborts
  // with a message instead of hitting undefined behavior.
  Mutex m(LockRank::kRequestQueue);
  EXPECT_DEATH(m.Unlock(), "CKR_CHECK failed");
}

TEST(LockOrderRegistryTest, UnrankedLocksAreExempt) {
  Mutex ranked(LockRank::kLogSink);
  Mutex leaf;  // kUnranked: opts out of the hierarchy.
  MutexLock a(&ranked);
  MutexLock b(&leaf);  // "Below" the log sink, but unranked: legal.
  EXPECT_EQ(LockOrderRegistry::HeldCountForTesting(), 1u);
}

TEST(LockOrderRegistryTest, OutOfLifoManualReleaseIsTracked) {
  Mutex low(LockRank::kServeLifecycle);
  Mutex high(LockRank::kLogSink);
  low.Lock();
  high.Lock();
  low.Unlock();  // Not LIFO; the newest matching entry is removed.
  EXPECT_EQ(LockOrderRegistry::HeldCountForTesting(), 1u);
  high.Unlock();
  EXPECT_EQ(LockOrderRegistry::HeldCountForTesting(), 0u);
}

TEST(LockOrderRegistryTest, HeldStacksAreThreadLocal) {
  Mutex low(LockRank::kServeLifecycle);
  Mutex high(LockRank::kLogSink);
  MutexLock a(&high);  // This thread holds the highest rank...
  std::thread t([&] {
    // ...but another thread starts from an empty stack, so acquiring a
    // lower rank there is legal and sees only its own holdings.
    MutexLock b(&low);
    EXPECT_EQ(LockOrderRegistry::HeldCountForTesting(), 1u);
  });
  t.join();
  EXPECT_EQ(LockOrderRegistry::HeldCountForTesting(), 1u);
}

TEST(LockOrderRegistryTest, ServeLayerRanksNestInDeclaredOrder) {
  // The declared hierarchy end-to-end, as the daemon nests it: lifecycle
  // while shutting the queue, registry under a worker, metrics under a
  // registry lookup, log under everything.
  Mutex lifecycle(LockRank::kServeLifecycle);
  Mutex queue(LockRank::kRequestQueue);
  Mutex registry(LockRank::kSnapshotRegistry);
  Mutex metrics(LockRank::kMetricsRegistry);
  Mutex sink(LockRank::kLogSink);
  MutexLock a(&lifecycle);
  MutexLock b(&queue);
  MutexLock c(&registry);
  MutexLock d(&metrics);
  MutexLock e(&sink);
  EXPECT_EQ(LockOrderRegistry::HeldCountForTesting(), 5u);
}

}  // namespace
}  // namespace ckr
