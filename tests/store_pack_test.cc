// Tests for framework binary I/O and the deployable store pack.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/check.h"
#include "core/contextual_ranker.h"
#include "corpus/doc_generator.h"
#include "framework/binary_io.h"
#include "framework/store_pack.h"

namespace ckr {
namespace {

TEST(BinaryIoTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.U16(0xabcd);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.F64(-3.75);
  w.Str("hello binary");
  w.Str("");
  std::string blob = w.Release();

  BinaryReader r(blob);
  EXPECT_EQ(r.U16(), 0xabcd);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.F64(), -3.75);
  EXPECT_EQ(r.Str(), "hello binary");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, OverReadSetsNotOk) {
  BinaryWriter w;
  w.U32(7);
  std::string blob = w.Release();
  BinaryReader r(blob);
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 0u);  // Past the end.
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.AtEnd());
}

TEST(BinaryIoTest, CorruptStringLengthDetected) {
  BinaryWriter w;
  w.U32(1000);  // Claims a 1000-byte string with no payload.
  BinaryReader r(w.Release());
  EXPECT_EQ(r.Str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(StoreComponentTest, TidTableRoundTrip) {
  GlobalTidTable table;
  uint32_t a = table.Intern("alpha");
  uint32_t b = table.Intern("beta stem");
  BinaryWriter w;
  table.SaveTo(&w);
  std::string blob = w.Release();
  BinaryReader r(blob);
  auto restored = GlobalTidTable::LoadFrom(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Lookup("alpha"), a);
  EXPECT_EQ(restored->Lookup("beta stem"), b);
  EXPECT_EQ(restored->size(), 2u);
}

TEST(StoreComponentTest, QuantizedStoreRoundTrip) {
  QuantizedInterestingnessStore store;
  InterestingnessVector v;
  v.freq_exact = 3.5;
  v.unit_score = 0.7;
  v.high_level_type[1] = 1.0;
  store.Add("concept x", v);
  InterestingnessVector zero;
  store.Add("concept y", zero);
  store.Finalize();

  BinaryWriter w;
  store.SaveTo(&w);
  std::string blob = w.Release();
  BinaryReader r(blob);
  auto restored = QuantizedInterestingnessStore::LoadFrom(&r);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::vector<double> orig, loaded;
  ASSERT_TRUE(store.Lookup("concept x", &orig));
  ASSERT_TRUE(restored->Lookup("concept x", &loaded));
  ASSERT_EQ(orig.size(), loaded.size());
  for (size_t i = 0; i < orig.size(); ++i) {
    EXPECT_DOUBLE_EQ(orig[i], loaded[i]) << i;
  }
}

TEST(StoreComponentTest, PackedRelevanceRoundTrip) {
  GlobalTidTable tids;
  PackedRelevanceStore store(&tids);
  store.Add("c1", {{"ta", 10.0}, {"tb", 5.0}});
  store.Add("c2", {{"tb", 8.0}, {"tc", 1.0}});
  store.Finalize();

  BinaryWriter w;
  store.SaveTo(&w);
  std::string blob = w.Release();
  BinaryReader r(blob);
  auto restored = PackedRelevanceStore::LoadFrom(&r, &tids);
  ASSERT_TRUE(restored.ok());
  std::unordered_set<uint32_t> ctx = {tids.Lookup("ta"), tids.Lookup("tb")};
  EXPECT_NEAR(restored->Score("c1", ctx), store.Score("c1", ctx), 1e-9);
  EXPECT_NEAR(restored->Score("c2", ctx), store.Score("c2", ctx), 1e-9);
}

TEST(StorePackTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(StorePack::Deserialize("garbage").ok());
  EXPECT_FALSE(StorePack::Deserialize("").ok());
}

// A tiny but complete pack, cheap enough to deserialize hundreds of
// mutated copies of.
std::string SmallPackBlob() {
  GlobalTidTable tids;
  QuantizedInterestingnessStore interest;
  InterestingnessVector v;
  v.freq_exact = 1.5;
  interest.Add("concept x", v);
  interest.Add("concept y", {});
  interest.Finalize();
  PackedRelevanceStore relevance(&tids);
  relevance.Add("concept x", {{"ta", 10.0}, {"tb", 5.0}});
  relevance.Add("concept y", {{"tb", 8.0}});
  relevance.Finalize();
  auto model = RankSvmModel::Deserialize(
      "ranksvm v1\n"
      "kernel linear\n"
      "mean 2 0 0\n"
      "inv_sd 2 1 1\n"
      "weights 2 1 2\n"
      "rff 0\n");
  CKR_CHECK(model.ok());
  return SerializeStorePack(tids, interest, relevance, *model);
}

TEST(StorePackTest, EveryTruncatedPrefixIsRejected) {
  std::string blob = SmallPackBlob();
  ASSERT_TRUE(StorePack::Deserialize(blob).ok());
  // Chop the valid pack at every 7th byte: every strict prefix must be
  // rejected with a Status — no abort, no overread, no false accept.
  for (size_t len = 0; len < blob.size(); len += 7) {
    auto truncated = StorePack::Deserialize(blob.substr(0, len));
    EXPECT_FALSE(truncated.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(StoreComponentTest, TidTableRejectsCorruptCount) {
  BinaryWriter w;
  w.U32(0x54493031);  // 'TI01'
  w.U32(0xFFFFFFFF);  // Claims 4 billion entries in an empty payload.
  BinaryReader r(w.buffer());
  auto table = GlobalTidTable::LoadFrom(&r);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreComponentTest, QuantizedStoreRejectsCorruptCount) {
  BinaryWriter w;
  w.U32(0x51493031);  // 'QI01'
  const size_t dim = InterestingnessVector::Dim();
  w.U32(static_cast<uint32_t>(dim));
  for (size_t i = 0; i < 2 * dim; ++i) w.F64(0.0);  // min/max tables.
  w.U32(0xFFFFFFFF);  // Corrupt record count.
  BinaryReader r(w.buffer());
  auto store = QuantizedInterestingnessStore::LoadFrom(&r);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreComponentTest, PackedRelevanceRejectsCorruptCount) {
  BinaryWriter w;
  w.U32(0x50523031);  // 'PR01'
  w.F64(1.0);         // score_scale
  w.U32(0xFFFFFFFF);  // Corrupt record count.
  BinaryReader r(w.buffer());
  GlobalTidTable tids;
  auto store = PackedRelevanceStore::LoadFrom(&r, &tids);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
}

TEST(StorePackTest, EndToEndRoundTripPreservesRanking) {
  ContextualRankerOptions options;
  options.pipeline = PipelineConfig::SmallForTests();
  auto ranker_or = ContextualRanker::Train(options);
  ASSERT_TRUE(ranker_or.ok());
  const ContextualRanker& ranker = **ranker_or;

  std::string blob = ranker.SerializePack();
  ASSERT_GT(blob.size(), 10000u);
  auto pack_or = StorePack::Deserialize(blob);
  ASSERT_TRUE(pack_or.ok()) << pack_or.status().ToString();
  const StorePack& pack = *pack_or;

  // A RuntimeRanker built from the loaded pack ranks identically to the
  // trained one (the detector is shared: dictionaries are provisioned
  // separately in production).
  RuntimeRanker loaded(ranker.pipeline().detector(), pack.interestingness,
                       *pack.relevance, *pack.tids, pack.model);
  DocGenerator gen(ranker.pipeline().world());
  for (DocId i = 0; i < 5; ++i) {
    Document story = gen.Generate(Document::Kind::kNews, 777000 + i);
    auto original = ranker.Rank(story.text);
    auto restored = loaded.ProcessDocument(story.text);
    ASSERT_EQ(original.size(), restored.size()) << i;
    for (size_t k = 0; k < original.size(); ++k) {
      EXPECT_EQ(original[k].key, restored[k].key);
      EXPECT_NEAR(original[k].score, restored[k].score, 1e-9);
    }
  }

  // File round trip.
  std::string path = ::testing::TempDir() + "/ckr_pack.bin";
  ASSERT_TRUE(pack.SaveToFile(path).ok());
  auto from_file = StorePack::LoadFromFile(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  EXPECT_EQ(from_file->tids->size(), pack.tids->size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ckr
