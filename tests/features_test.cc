// Unit tests for ckr_features: the Table-I interestingness vector and the
// relevance mining/scoring of Section IV-B.
#include <gtest/gtest.h>

#include <cmath>

#include "common/string_util.h"
#include "core/pipeline.h"
#include "features/interestingness.h"
#include "features/relevance.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace ckr {
namespace {

// One shared small pipeline for the whole file (construction is the
// expensive part).
class FeaturesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto p = Pipeline::Build(PipelineConfig::SmallForTests());
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    pipeline_ = p->release();
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static const Entity& MostPopular() {
    const Entity* best = nullptr;
    for (const Entity& e : pipeline_->world().entities()) {
      if (e.is_generic || e.TermCount() < 2) continue;
      if (!best || e.popularity > best->popularity) best = &e;
    }
    return *best;
  }
  static const Entity& LeastPopular() {
    const Entity* worst = nullptr;
    for (const Entity& e : pipeline_->world().entities()) {
      if (e.is_generic) continue;
      if (!worst || e.popularity < worst->popularity) worst = &e;
    }
    return *worst;
  }

  static Pipeline* pipeline_;
};

Pipeline* FeaturesTest::pipeline_ = nullptr;

TEST_F(FeaturesTest, VectorShapeAndNames) {
  EXPECT_EQ(InterestingnessVector::Dim(), 8u + kNumEntityTypes);
  EXPECT_EQ(InterestingnessVector::DimNames().size(),
            InterestingnessVector::Dim());
}

TEST_F(FeaturesTest, ExtractBasicFields) {
  const Entity& e = MostPopular();
  InterestingnessVector v =
      pipeline_->interestingness().Extract(e.key, e.type);
  EXPECT_GT(v.freq_exact, 0.0);
  EXPECT_GE(v.freq_phrase_contained, v.freq_exact);
  EXPECT_GT(v.unit_score, 0.0);
  EXPECT_GT(v.searchengine_phrase, 0.0);
  EXPECT_DOUBLE_EQ(v.concept_size, static_cast<double>(e.TermCount()));
  EXPECT_DOUBLE_EQ(v.number_of_chars, static_cast<double>(e.key.size()));
  EXPECT_DOUBLE_EQ(v.high_level_type[static_cast<size_t>(e.type)], 1.0);
}

TEST_F(FeaturesTest, PopularEntityOutscoresUnpopular) {
  const Entity& hot = MostPopular();
  const Entity& cold = LeastPopular();
  auto vh = pipeline_->interestingness().Extract(hot.key, hot.type);
  auto vc = pipeline_->interestingness().Extract(cold.key, cold.type);
  EXPECT_GT(vh.freq_exact, vc.freq_exact);
  EXPECT_GT(vh.freq_phrase_contained, vc.freq_phrase_contained);
}

TEST_F(FeaturesTest, UnknownConceptGetsZeroQueryFeatures) {
  auto v = pipeline_->interestingness().Extract("zzz completely unknown",
                                                EntityType::kConcept);
  EXPECT_DOUBLE_EQ(v.freq_exact, 0.0);
  EXPECT_DOUBLE_EQ(v.unit_score, 0.0);
  EXPECT_DOUBLE_EQ(v.wiki_word_count, 0.0);
  EXPECT_DOUBLE_EQ(v.searchengine_phrase, 0.0);
}

TEST_F(FeaturesTest, FlattenRespectsGroupMask) {
  const Entity& e = MostPopular();
  auto v = pipeline_->interestingness().Extract(e.key, e.type);
  auto full = v.Flatten(kAllFeatureGroups);
  ASSERT_EQ(full.size(), InterestingnessVector::Dim());

  auto no_logs = v.Flatten(MaskWithout(FeatureGroup::kQueryLogs));
  EXPECT_EQ(no_logs[0], 0.0);
  EXPECT_EQ(no_logs[1], 0.0);
  EXPECT_EQ(no_logs[2], 0.0);
  EXPECT_EQ(no_logs[3], full[3]);  // Other groups untouched.

  auto no_tax = v.Flatten(MaskWithout(FeatureGroup::kTaxonomy));
  for (size_t i = 8; i < no_tax.size(); ++i) EXPECT_EQ(no_tax[i], 0.0);
  EXPECT_EQ(no_tax[0], full[0]);

  auto no_text = v.Flatten(MaskWithout(FeatureGroup::kTextBased));
  EXPECT_EQ(no_text[4], 0.0);
  EXPECT_EQ(no_text[5], 0.0);
  EXPECT_EQ(no_text[6], 0.0);

  auto no_sr = v.Flatten(MaskWithout(FeatureGroup::kSearchResults));
  EXPECT_EQ(no_sr[3], 0.0);

  auto no_other = v.Flatten(MaskWithout(FeatureGroup::kOther));
  EXPECT_EQ(no_other[7], 0.0);
}

TEST_F(FeaturesTest, MiningReturnsAtMostM) {
  const Entity& e = MostPopular();
  for (auto res : {RelevanceResource::kSnippets, RelevanceResource::kPrisma,
                   RelevanceResource::kQuerySuggestions}) {
    auto terms = pipeline_->relevance_miner().Mine(e.key, res, 25);
    EXPECT_LE(terms.size(), 25u) << RelevanceResourceName(res);
    // Sorted by descending score.
    for (size_t i = 1; i < terms.size(); ++i) {
      EXPECT_GE(terms[i - 1].score, terms[i].score);
    }
  }
}

TEST_F(FeaturesTest, MinedTermsAreStemsWithoutConceptTerms) {
  const Entity& e = MostPopular();
  auto terms =
      pipeline_->relevance_miner().Mine(e.key, RelevanceResource::kSnippets);
  ASSERT_FALSE(terms.empty());
  for (const RelevantTerm& t : terms) {
    // Mined terms are produced by the stemmer (note: Porter is not
    // guaranteed idempotent, so we check provenance-style properties).
    EXPECT_EQ(t.term, ToLowerAscii(t.term));
    EXPECT_FALSE(IsStopWord(t.term)) << t.term;
    EXPECT_GT(t.score, 0.0);
    EXPECT_EQ(StemPhrase(e.key).find(t.term + " "), std::string::npos);
  }
}

TEST_F(FeaturesTest, SnippetsMineCompanionWords) {
  // The paper's core claim: the mined keywords are the terms that co-occur
  // with the concept in its relevant contexts — for our world, the
  // companion vocabulary.
  const Entity& e = MostPopular();
  auto terms =
      pipeline_->relevance_miner().Mine(e.key, RelevanceResource::kSnippets);
  ASSERT_GE(terms.size(), 10u);
  std::unordered_set<std::string> mined;
  for (const auto& t : terms) mined.insert(t.term);
  size_t hits = 0;
  for (WordId wid : e.companions) {
    std::string stem = StemPhrase(pipeline_->world().vocabulary().Word(wid));
    if (mined.count(stem) > 0) ++hits;
  }
  EXPECT_GE(hits, e.companions.size() / 2);
}

TEST_F(FeaturesTest, SummationSeparatesSpecificFromGeneric) {
  // Table II's shape: the top of the summation ranking is occupied by
  // specific concepts, not junk units. (The full paper-scale gap is
  // reproduced by bench_table2_keyword_summation; at this reduced test
  // scale we assert the ordering of the extremes.)
  ASSERT_FALSE(pipeline_->world().GenericConcepts().empty());
  std::vector<double> specific_sums;
  for (const Entity& e : pipeline_->world().entities()) {
    if (e.is_generic || e.TermCount() < 2) continue;
    specific_sums.push_back(RelevanceMiner::SummationOfScores(
        pipeline_->relevance_miner().Mine(e.key,
                                          RelevanceResource::kSnippets)));
    if (specific_sums.size() >= 60) break;
  }
  std::sort(specific_sums.rbegin(), specific_sums.rend());
  ASSERT_GE(specific_sums.size(), 10u);
  double top10_mean = 0;
  for (size_t i = 0; i < 10; ++i) top10_mean += specific_sums[i];
  top10_mean /= 10;

  double junk_mean = 0;
  size_t junk_n = 0;
  for (EntityId id : pipeline_->world().GenericConcepts()) {
    junk_mean += RelevanceMiner::SummationOfScores(
        pipeline_->relevance_miner().Mine(pipeline_->world().entity(id).key,
                                          RelevanceResource::kSnippets));
    ++junk_n;
  }
  junk_mean /= static_cast<double>(junk_n);
  EXPECT_GT(top10_mean, 1.3 * junk_mean);
}

TEST_F(FeaturesTest, ScorerPresenceSemantics) {
  RelevanceScorer scorer;
  scorer.AddConcept("test concept", {{"alpha", 5.0}, {"beta", 3.0}});
  EXPECT_TRUE(scorer.HasConcept("Test  Concept"));
  EXPECT_DOUBLE_EQ(scorer.Score("test concept", "alpha text"), 5.0);
  EXPECT_DOUBLE_EQ(scorer.Score("test concept", "alpha beta text"), 8.0);
  // Presence, not frequency.
  EXPECT_DOUBLE_EQ(scorer.Score("test concept", "alpha alpha alpha"), 5.0);
  EXPECT_DOUBLE_EQ(scorer.Score("test concept", "gamma delta"), 0.0);
  EXPECT_DOUBLE_EQ(scorer.Score("unknown", "alpha"), 0.0);
}

TEST_F(FeaturesTest, ScorerStemsContext) {
  RelevanceScorer scorer;
  scorer.AddConcept("c", {{StemPhrase("running"), 2.0}});
  // "runs"/"running" stem together.
  EXPECT_GT(scorer.Score("c", "he was running fast"), 0.0);
}

TEST_F(FeaturesTest, RelevanceScoreHigherInOnTopicContext) {
  const Entity& e = MostPopular();
  RelevanceScorer scorer;
  scorer.AddConcept(
      e.key, pipeline_->relevance_miner().Mine(e.key,
                                               RelevanceResource::kSnippets));
  // On-topic context: a web doc of the entity's topic that mentions it;
  // off-topic: a doc from another topic.
  const Document* on = nullptr;
  const Document* off = nullptr;
  for (const Document& d : pipeline_->web_corpus()) {
    if (on == nullptr && d.topic == e.primary_topic &&
        d.text.find(e.surface) != std::string::npos) {
      on = &d;
    }
    if (off == nullptr && d.topic != e.primary_topic &&
        d.topic != e.secondary_topic) {
      off = &d;
    }
    if (on && off) break;
  }
  ASSERT_NE(on, nullptr);
  ASSERT_NE(off, nullptr);
  EXPECT_GT(scorer.Score(e.key, on->text), 2.0 * scorer.Score(e.key, off->text));
}

TEST_F(FeaturesTest, ResourceNames) {
  EXPECT_EQ(RelevanceResourceName(RelevanceResource::kSnippets), "snippets");
  EXPECT_EQ(RelevanceResourceName(RelevanceResource::kPrisma), "prisma");
  EXPECT_EQ(RelevanceResourceName(RelevanceResource::kQuerySuggestions),
            "query_suggestions");
}

}  // namespace
}  // namespace ckr
