// Worker-count determinism of the training & evaluation engine: CV fold
// training, bootstrap-CI resampling, and the trainer's batch phases must
// produce bit-identical results for 1, 2, and 4 workers. Test names
// contain "Parallel" so the tsan preset exercises them under the race
// detector.
#include <gtest/gtest.h>

#include <vector>

#include "core/dataset.h"
#include "core/experiment.h"
#include "core/pipeline.h"
#include "eval/metrics.h"
#include "ranksvm/rank_svm.h"

namespace ckr {
namespace {

// One shared small pipeline + dataset for the whole file (mirrors
// core_test.cc; building it dominates the suite's runtime).
class TrainingParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto p = Pipeline::Build(PipelineConfig::SmallForTests());
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    pipeline_ = p->release();
    DatasetBuilder builder(*pipeline_, DatasetConfig{});
    auto ds = builder.Build();
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new ClickDataset(std::move(*ds));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pipeline_;
    pipeline_ = nullptr;
    dataset_ = nullptr;
  }

  static Pipeline* pipeline_;
  static ClickDataset* dataset_;
};

Pipeline* TrainingParallelTest::pipeline_ = nullptr;
ClickDataset* TrainingParallelTest::dataset_ = nullptr;

// Every field, compared exactly — including the bootstrap CI bounds.
void ExpectBitIdentical(const EvalResult& a, const EvalResult& b) {
  EXPECT_EQ(a.weighted_error_rate, b.weighted_error_rate);
  EXPECT_EQ(a.error_rate, b.error_rate);
  EXPECT_EQ(a.windows, b.windows);
  for (size_t k = 0; k < 3; ++k) EXPECT_EQ(a.ndcg[k], b.ndcg[k]);
  EXPECT_EQ(a.weighted_error_ci.mean, b.weighted_error_ci.mean);
  EXPECT_EQ(a.weighted_error_ci.lo, b.weighted_error_ci.lo);
  EXPECT_EQ(a.weighted_error_ci.hi, b.weighted_error_ci.hi);
}

TEST_F(TrainingParallelTest, ParallelCvMetricsMatchSequential) {
  ModelSpec spec;
  spec.include_relevance = true;
  ExperimentRunner sequential(*dataset_, 1);
  auto reference = sequential.EvaluateModelCV(spec);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (unsigned threads : {2u, 4u}) {
    ExperimentRunner parallel(*dataset_, threads);
    auto result = parallel.EvaluateModelCV(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectBitIdentical(*result, *reference);
  }
}

TEST_F(TrainingParallelTest, ParallelCvMatchesForRbfKernel) {
  ModelSpec spec;
  spec.svm.kernel = SvmKernel::kRbfFourier;
  spec.svm.rff_dim = 128;  // Small: keeps the 3 CV sweeps fast.
  ExperimentRunner sequential(*dataset_, 1);
  auto reference = sequential.EvaluateModelCV(spec);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (unsigned threads : {2u, 4u}) {
    ExperimentRunner parallel(*dataset_, threads);
    auto result = parallel.EvaluateModelCV(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectBitIdentical(*result, *reference);
  }
}

TEST_F(TrainingParallelTest, ParallelBaselineMetricsMatchSequential) {
  // No training involved — isolates the bootstrap-CI fan-out inside
  // EvaluateScores.
  ExperimentRunner sequential(*dataset_, 1);
  EvalResult reference = sequential.EvaluateBaseline();
  for (unsigned threads : {2u, 4u}) {
    ExperimentRunner parallel(*dataset_, threads);
    ExpectBitIdentical(parallel.EvaluateBaseline(), reference);
  }
}

TEST_F(TrainingParallelTest, ParallelTrainerThreadsMatchSingle) {
  // The trainer's internal fan-out (RFF pre-transform + pair-diff
  // materialization) on real dataset features.
  ModelSpec spec;
  spec.svm.kernel = SvmKernel::kRbfFourier;
  spec.svm.rff_dim = 128;
  ExperimentRunner runner(*dataset_, 1);
  spec.svm.num_threads = 1;
  auto reference = runner.TrainFullModel(spec);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string blob = reference->SerializeBinary();
  for (unsigned threads : {2u, 4u, 0u}) {
    spec.svm.num_threads = threads;
    auto model = runner.TrainFullModel(spec);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    EXPECT_EQ(model->SerializeBinary(), blob) << "threads=" << threads;
  }
}

TEST(BootstrapParallelTest, ParallelResamplingBitIdentical) {
  std::vector<std::pair<double, double>> groups;
  for (int i = 0; i < 257; ++i) {
    groups.emplace_back(static_cast<double>(i % 7),
                        static_cast<double>(7 + i % 11));
  }
  BootstrapCi reference =
      BootstrapRatioCi(groups, /*resamples=*/4000, 0.95, /*seed=*/99, 1);
  for (unsigned threads : {2u, 3u, 4u, 0u}) {
    BootstrapCi ci = BootstrapRatioCi(groups, 4000, 0.95, 99, threads);
    EXPECT_EQ(ci.mean, reference.mean) << "threads=" << threads;
    EXPECT_EQ(ci.lo, reference.lo) << "threads=" << threads;
    EXPECT_EQ(ci.hi, reference.hi) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ckr
