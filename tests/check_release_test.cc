// Release-mode contract for check.h: with dchecks compiled out,
// CKR_DCHECK must expand to nothing observable — its operand is never
// evaluated, it is valid in constant expressions, and Span stays a
// trivially copyable pointer+size pair. CKR_CHECK, by contrast, stays
// armed in every build. CKR_FORCE_NO_DCHECKS is the per-TU hook that
// pins the release configuration regardless of how the build defines
// NDEBUG / CKR_ENABLE_DCHECKS.
#define CKR_FORCE_NO_DCHECKS
#include "common/check.h"

#include <cstdint>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/lock_order.h"
#include "common/mutex.h"
#include "gtest/gtest.h"

namespace ckr {
namespace {

static_assert(CKR_DEBUG_CHECKS == 0,
              "CKR_FORCE_NO_DCHECKS must compile dchecks out");

// Zero-overhead in the strongest sense the language can state: the
// macro's operand is an unevaluated context, so a falsy condition — even
// a non-constant one — is legal inside constexpr evaluation.
constexpr int ConstexprWithDisabledDcheck(int x) {
  CKR_DCHECK(x > 1000);
  CKR_DCHECK_EQ(x, -1);
  return x + 1;
}
static_assert(ConstexprWithDisabledDcheck(1) == 2);

// Span must stay a raw pointer + size with no hidden state so that
// passing one by value costs exactly two registers.
static_assert(sizeof(Span<const uint32_t>) == sizeof(const uint32_t*) +
                                                  sizeof(size_t));
static_assert(std::is_trivially_copyable_v<Span<const uint32_t>>);
static_assert(std::is_trivially_destructible_v<Span<double>>);

TEST(CkrCheckReleaseTest, DcheckOperandIsNeverEvaluated) {
  int n = 0;
  CKR_DCHECK(++n > 0);
  CKR_DCHECK_EQ(++n, 123);
  CKR_DCHECK_LT(++n, -5);
  EXPECT_EQ(n, 0);
}

TEST(CkrCheckReleaseTest, DisabledDcheckDoesNotAbort) {
  CKR_DCHECK(false);
  CKR_DCHECK_EQ(1, 2);
  CKR_DCHECK_LT(5, 3);
}

TEST(CkrCheckReleaseTest, SpanAccessCompilesToUncheckedReads) {
  std::vector<uint32_t> v{4, 5, 6};
  Span<const uint32_t> s = MakeSpan(v);
  EXPECT_EQ(s[0], 4u);
  EXPECT_EQ(s.back(), 6u);
  EXPECT_EQ(CsrRow(v, std::vector<size_t>{0, 3}, 0).size(), 3u);
}

TEST(CkrCheckReleaseDeathTest, CkrCheckStaysArmedInRelease) {
  EXPECT_DEATH(CKR_CHECK(false), "CKR_CHECK failed");
  EXPECT_DEATH(CKR_CHECK_EQ(1, 2), "CKR_CHECK failed");
}

// With dchecks compiled out the annotated mutex must be exactly a
// std::mutex: no rank storage, no registry bookkeeping.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "release Mutex must add no state over std::mutex");

TEST(CkrCheckReleaseTest, LockOrderRegistryIsCompiledOut) {
  // A textbook inversion against the declared hierarchy: with the
  // registry compiled out nothing aborts and nothing is tracked.
  Mutex low(LockRank::kServeLifecycle);
  Mutex high(LockRank::kLogSink);
  MutexLock a(&high);
  MutexLock b(&low);
  EXPECT_EQ(LockOrderRegistry::HeldCountForTesting(), 0u);
}

}  // namespace
}  // namespace ckr
