// Unit tests for ckr_detect: Aho-Corasick, pattern scanners, and the
// detection pipeline.
#include <gtest/gtest.h>

#include <algorithm>

#include "corpus/doc_generator.h"
#include "detect/aho_corasick.h"
#include "detect/entity_detector.h"
#include "detect/pattern_detector.h"
#include "text/tokenizer.h"

namespace ckr {
namespace {

std::vector<std::string> Toks(const char* text) {
  return TokenizeToStrings(text);
}

TEST(AhoCorasickTest, SinglePhrase) {
  PhraseMatcher m;
  ASSERT_TRUE(m.AddPhrase("new york", 1).ok());
  m.Build();
  auto matches = m.FindAll(Toks("i love new york city"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].token_begin, 2u);
  EXPECT_EQ(matches[0].token_count, 2u);
  EXPECT_EQ(matches[0].payload, 1u);
}

TEST(AhoCorasickTest, OverlappingAndNestedMatches) {
  PhraseMatcher m;
  ASSERT_TRUE(m.AddPhrase("new york", 1).ok());
  ASSERT_TRUE(m.AddPhrase("new york city", 2).ok());
  ASSERT_TRUE(m.AddPhrase("york city hall", 3).ok());
  m.Build();
  auto matches = m.FindAll(Toks("new york city hall opened"));
  // All three (plus none spurious) are reported.
  ASSERT_EQ(matches.size(), 3u);
  std::vector<uint32_t> payloads;
  for (const auto& x : matches) payloads.push_back(x.payload);
  std::sort(payloads.begin(), payloads.end());
  EXPECT_EQ(payloads, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(AhoCorasickTest, RepeatedOccurrences) {
  PhraseMatcher m;
  ASSERT_TRUE(m.AddPhrase("ha", 7).ok());
  m.Build();
  auto matches = m.FindAll(Toks("ha ho ha ha"));
  EXPECT_EQ(matches.size(), 3u);
}

TEST(AhoCorasickTest, FailLinksAcrossSharedPrefixes) {
  PhraseMatcher m;
  ASSERT_TRUE(m.AddPhrase("a b c", 1).ok());
  ASSERT_TRUE(m.AddPhrase("b c d", 2).ok());
  m.Build();
  // "a b c d": "a b c" ends at token 2 and "b c d" at token 3 — the second
  // requires a fail-link transition, not a restart.
  auto matches = m.FindAll(Toks("a b c d"));
  ASSERT_EQ(matches.size(), 2u);
}

TEST(AhoCorasickTest, UnknownTermsResetState) {
  PhraseMatcher m;
  ASSERT_TRUE(m.AddPhrase("x y", 1).ok());
  m.Build();
  EXPECT_TRUE(m.FindAll(Toks("x qqq y")).empty());
}

TEST(AhoCorasickTest, DuplicatePhraseKeepsFirstPayload) {
  PhraseMatcher m;
  ASSERT_TRUE(m.AddPhrase("dup phrase", 1).ok());
  ASSERT_TRUE(m.AddPhrase("dup phrase", 2).ok());
  m.Build();
  EXPECT_EQ(m.NumPhrases(), 1u);
  auto matches = m.FindAll(Toks("dup phrase"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].payload, 1u);
}

TEST(AhoCorasickTest, ErrorsOnMisuse) {
  PhraseMatcher m;
  EXPECT_FALSE(m.AddPhrase("", 1).ok());
  ASSERT_TRUE(m.AddPhrase("ok", 1).ok());
  m.Build();
  EXPECT_FALSE(m.AddPhrase("late", 2).ok());
}

TEST(AhoCorasickTest, TermIdAndPreInternedFindAll) {
  PhraseMatcher m;
  ASSERT_TRUE(m.AddPhrase("new york", 1).ok());
  ASSERT_TRUE(m.AddPhrase("new york city", 2).ok());
  m.Build();
  // Every term of every phrase has a stable id; unknown terms do not.
  uint32_t t_new = m.TermId("new");
  uint32_t t_york = m.TermId("york");
  uint32_t t_city = m.TermId("city");
  EXPECT_NE(t_new, PhraseMatcher::kUnknownTerm);
  EXPECT_NE(t_york, PhraseMatcher::kUnknownTerm);
  EXPECT_NE(t_city, PhraseMatcher::kUnknownTerm);
  EXPECT_EQ(m.TermId("boston"), PhraseMatcher::kUnknownTerm);
  EXPECT_LT(t_new, m.NumTerms());

  // The pre-interned overload must agree with the string path, including
  // unknown-term state resets.
  std::vector<uint32_t> tids = {t_new, t_york, t_city};
  std::vector<PhraseMatch> got;
  m.FindAllTids(tids.data(), tids.size(), &got);
  auto want = m.FindAll({"new", "york", "city"});
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].token_begin, want[i].token_begin);
    EXPECT_EQ(got[i].token_count, want[i].token_count);
    EXPECT_EQ(got[i].payload, want[i].payload);
  }

  std::vector<uint32_t> broken = {t_new, PhraseMatcher::kUnknownTerm, t_york};
  m.FindAllTids(broken.data(), broken.size(), &got);
  EXPECT_TRUE(got.empty());
}

// Email literals are assembled at runtime so the source file contains no
// address-shaped strings.
std::string MakeAddr(const char* local, const char* domain) {
  return std::string(local) + "@" + domain;
}

TEST(PatternTest, Emails) {
  std::string addr = MakeAddr("jane.doe", "example.com");
  auto matches = DetectPatterns("mail me at " + addr + " today");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].kind, PatternKind::kEmail);
  EXPECT_EQ(matches[0].text, addr);
}

TEST(PatternTest, EmailWithPlusAndDots) {
  std::string addr = MakeAddr("a.b+tag_1", "sub.domain.org");
  auto matches = DetectPatterns(addr);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].text, addr);
}

TEST(PatternTest, Urls) {
  auto matches =
      DetectPatterns("see http://example.com/path?q=1 and www.test.org.");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].kind, PatternKind::kUrl);
  EXPECT_EQ(matches[0].text, "http://example.com/path?q=1");
  EXPECT_EQ(matches[1].text, "www.test.org");  // Trailing dot stripped.
}

TEST(PatternTest, HttpsUrl) {
  auto matches = DetectPatterns("(https://a.b.co/x)");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].text, "https://a.b.co/x");
}

TEST(PatternTest, Phones) {
  auto matches = DetectPatterns("call 555-123-4567 or (408) 555-1234 now");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].kind, PatternKind::kPhone);
  EXPECT_EQ(matches[0].text, "555-123-4567");
  EXPECT_EQ(matches[1].text, "(408) 555-1234");
}

TEST(PatternTest, BareNumbersAreNotPhones) {
  EXPECT_TRUE(DetectPatterns("the year 2008 and 5551234567").empty());
}

TEST(PatternTest, ShortDigitGroupsAreNotPhones) {
  EXPECT_TRUE(DetectPatterns("score was 12-34 yesterday").empty());
}

TEST(PatternTest, OffsetsPointIntoSource) {
  std::string text = "x " + MakeAddr("user", "host.net") + " y";
  auto matches = DetectPatterns(text);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(text.substr(matches[0].begin, matches[0].end - matches[0].begin),
            matches[0].text);
}

class DetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<EntityDetector::DictionaryEntry> dict = {
        {"barack obama", EntityType::kPerson, 3},
        {"new york", EntityType::kPlace, 0},
        {"new york times", EntityType::kOrganization, 1},
        {"texas", EntityType::kPlace, 2},
    };
    UnitDictionary units;
    units.Add({"auto insurance", 2, 100, 2.0, 0.8});
    units.Add({"insurance", 1, 400, 0.0, 0.5});   // Single-term: ignored.
    units.Add({"new york", 2, 900, 3.0, 0.95});   // Collides with dict.
    units_ = std::move(units);
    detector_ = std::make_unique<EntityDetector>(dict, &units_,
                                                 DetectorOptions{});
  }
  UnitDictionary units_;
  std::unique_ptr<EntityDetector> detector_;
};

TEST_F(DetectorTest, DetectsDictionaryEntities) {
  auto dets = detector_->Detect("Barack Obama visited Texas yesterday.");
  ASSERT_EQ(dets.size(), 2u);
  EXPECT_EQ(dets[0].key, "barack obama");
  EXPECT_EQ(dets[0].type, EntityType::kPerson);
  EXPECT_TRUE(dets[0].from_dictionary);
  EXPECT_EQ(dets[0].surface, "Barack Obama");
  EXPECT_EQ(dets[1].key, "texas");
}

TEST_F(DetectorTest, DetectsConceptsFromUnits) {
  auto dets = detector_->Detect("cheap auto insurance offers");
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].key, "auto insurance");
  EXPECT_EQ(dets[0].type, EntityType::kConcept);
  EXPECT_FALSE(dets[0].from_dictionary);
  EXPECT_DOUBLE_EQ(dets[0].unit_score, 0.8);
}

TEST_F(DetectorTest, DictionaryIdentityWinsOverUnit) {
  auto dets = detector_->Detect("I moved to New York recently");
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].key, "new york");
  EXPECT_EQ(dets[0].type, EntityType::kPlace);
  EXPECT_TRUE(dets[0].from_dictionary);
  // The unit score is still attached for the ranking features.
  EXPECT_DOUBLE_EQ(dets[0].unit_score, 0.95);
}

TEST_F(DetectorTest, LongestMatchWinsCollision) {
  auto dets = detector_->Detect("the New York Times reported");
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].key, "new york times");
  EXPECT_EQ(dets[0].type, EntityType::kOrganization);
}

TEST_F(DetectorTest, CollisionResolutionCanBeDisabled) {
  DetectorOptions opts;
  opts.resolve_collisions = false;
  std::vector<EntityDetector::DictionaryEntry> dict = {
      {"new york", EntityType::kPlace, 0},
      {"new york times", EntityType::kOrganization, 1},
  };
  EntityDetector raw(dict, nullptr, opts);
  auto dets = raw.Detect("the New York Times reported");
  EXPECT_EQ(dets.size(), 2u);
}

TEST_F(DetectorTest, PatternsCoexistWithEntities) {
  auto dets = detector_->Detect(
      "Barack Obama's office: call 555-123-4567 or visit "
      "http://whitehouse.gov now");
  ASSERT_EQ(dets.size(), 3u);
  EXPECT_EQ(dets[0].type, EntityType::kPerson);
  EXPECT_EQ(dets[1].type, EntityType::kPattern);
  EXPECT_EQ(dets[2].type, EntityType::kPattern);
}

TEST_F(DetectorTest, PatternsCanBeDisabled) {
  DetectorOptions opts;
  opts.detect_patterns = false;
  EntityDetector d({{"texas", EntityType::kPlace, 0}}, nullptr, opts);
  auto dets = d.Detect("texas hotline 555-123-4567");
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].key, "texas");
}

TEST_F(DetectorTest, OffsetsAreByteAccurate) {
  std::string text = "  Barack Obama, in Texas.";
  auto dets = detector_->Detect(text);
  ASSERT_EQ(dets.size(), 2u);
  for (const Detection& d : dets) {
    EXPECT_EQ(text.substr(d.begin, d.end - d.begin), d.surface);
  }
}

TEST_F(DetectorTest, CaseInsensitiveMatching) {
  auto dets = detector_->Detect("BARACK OBAMA and teXas");
  EXPECT_EQ(dets.size(), 2u);
}

TEST_F(DetectorTest, DetectRawAgreesWithDetect) {
  const std::string texts[] = {
      "Barack Obama visited New York and the New York Times newsroom.",
      "Call 555-123-4567 or see http://nytimes.example.com about texas "
      "auto insurance in New York City.",
      "",
      "no entities here at all",
  };
  EntityDetector::Scratch scratch;  // Reused across documents.
  for (const std::string& text : texts) {
    auto dets = detector_->Detect(text);
    detector_->DetectRaw(text, &scratch);
    ASSERT_EQ(scratch.raw.size(), dets.size()) << "text: " << text;
    for (size_t i = 0; i < dets.size(); ++i) {
      const auto& r = scratch.raw[i];
      EXPECT_EQ(r.begin, dets[i].begin);
      EXPECT_EQ(r.end, dets[i].end);
      EXPECT_EQ(r.type, dets[i].type);
      if (r.entry_id != EntityDetector::kPatternEntry) {
        EXPECT_EQ(detector_->EntryKey(r.entry_id), dets[i].key);
      }
    }
  }
}

TEST(DetectorWorldTest, FromWorldDetectsPlantedMentions) {
  WorldConfig cfg;
  cfg.num_topics = 6;
  cfg.background_vocab = 600;
  cfg.words_per_topic = 40;
  cfg.num_named_entities = 150;
  cfg.num_concepts = 80;
  cfg.num_generic_concepts = 10;
  auto world_or = World::Create(cfg);
  ASSERT_TRUE(world_or.ok());
  const World& world = **world_or;
  EntityDetector detector = EntityDetector::FromWorld(world, nullptr, {});
  EXPECT_GT(detector.NumDictionaryEntries(), 100u);

  DocGenerator gen(world);
  size_t planted_dict = 0, found = 0;
  for (DocId id = 0; id < 20; ++id) {
    Document doc = gen.Generate(Document::Kind::kNews, id);
    auto dets = detector.Detect(doc.text);
    for (const MentionTruth& m : doc.mentions) {
      const Entity& e = world.entity(m.entity);
      if (!e.in_dictionary) continue;
      ++planted_dict;
      for (const Detection& d : dets) {
        if (d.key == e.key && d.begin <= m.begin && d.end >= m.end) {
          ++found;
          break;
        }
      }
    }
  }
  ASSERT_GT(planted_dict, 30u);
  // Nearly all planted dictionary mentions are recovered (a few are lost
  // to longest-match collisions with overlapping entities).
  EXPECT_GT(static_cast<double>(found) / static_cast<double>(planted_dict),
            0.9);
}

}  // namespace
}  // namespace ckr
