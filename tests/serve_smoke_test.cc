// End-to-end serving smoke (ungated — small world, a few seconds): a
// streamed sharded build is checked bit-identical to the single-index
// oracle, then the daemon is driven with the deterministic load
// generator through the two behaviours that define the serving layer:
//  * hot snapshot swap under live load with ZERO failed requests, and
//  * admission-control shedding under deliberate overload, with every
//    submitted request answered exactly once.
// Real threads and the real clock are exercised here; the deterministic
// shed/deadline state machine is pinned separately in serve_test.cc.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "corpus/corpus_stream.h"
#include "corpus/document.h"
#include "corpus/world.h"
#include "index/inverted_index.h"
#include "obs/metrics.h"
#include "search/search_service.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "serve/sharded_index.h"
#include "serve/snapshot.h"

namespace ckr {
namespace {

constexpr size_t kSmokeDocs = 1200;
constexpr uint64_t kSmokeSeed = 20090331;

class ServeSmokeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = World::Create(ScaledWorldConfig(kSmokeDocs, kSmokeSeed))
                 ->release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static ShardedIndex BuildSharded(size_t num_shards) {
    ShardedIndexConfig config;
    config.num_shards = num_shards;
    config.build.store_text = false;
    config.build.build_block_index = true;
    config.stream.workers = 2;
    auto sharded =
        ShardedIndex::Build(*world_, Document::Kind::kWeb, kSmokeDocs, config);
    CKR_CHECK(sharded.ok());
    return std::move(sharded).value();
  }

  static std::unique_ptr<ServingSnapshot> BuildSnapshot(size_t num_shards) {
    auto snapshot = std::make_unique<ServingSnapshot>(BuildSharded(num_shards));
    snapshot->evaluator =
        ChooseEvaluator(snapshot->index.MaxShardDocs(),
                        snapshot->index.shard(0).has_block_index());
    return snapshot;
  }

  static World* world_;
};

World* ServeSmokeTest::world_ = nullptr;

TEST_F(ServeSmokeTest, ShardedBuildMatchesSingleIndexOracle) {
  const ShardedIndex sharded = BuildSharded(4);
  ASSERT_EQ(sharded.NumDocs(), kSmokeDocs);

  IndexBuildOptions opts;
  opts.store_text = false;
  InvertedIndex oracle(opts);
  CorpusStreamer streamer(*world_);
  CorpusStreamConfig stream_cfg;
  stream_cfg.workers = 2;
  Status s = streamer.Stream(Document::Kind::kWeb, kSmokeDocs, stream_cfg,
                             [&](Document&& doc) { oracle.Add(doc); });
  ASSERT_TRUE(s.ok()) << s.message();
  oracle.Finalize();
  oracle.RebuildBlockIndex(BlockCodec::kVarintGB);

  LoadGenConfig load_cfg;
  const LoadGenerator gen(*world_, load_cfg);
  for (uint64_t i = 0; i < 40; ++i) {
    const std::string query = gen.Request(i * 31).query;
    EXPECT_EQ(sharded.RegularResultCount(query),
              oracle.RegularResultCount(query))
        << query;
    const auto expected = oracle.Search(query, 10);
    for (QueryEvaluator evaluator :
         {QueryEvaluator::kExhaustive, QueryEvaluator::kMaxScore,
          QueryEvaluator::kBlockMaxWand}) {
      const auto got = sharded.Search(query, 10, Bm25Params{}, evaluator);
      ASSERT_EQ(got.size(), expected.size()) << query;
      for (size_t r = 0; r < expected.size(); ++r) {
        ASSERT_EQ(got[r].doc, expected[r].doc) << query << " rank " << r;
        ASSERT_EQ(got[r].score, expected[r].score) << query << " rank " << r;
      }
    }
  }
}

TEST_F(ServeSmokeTest, HotSwapUnderLoadLosesNothing) {
  obs::MetricRegistry metrics;
  ServeDaemonConfig config;
  config.num_workers = 2;
  config.queue_capacity = 4096;  // Roomy: this leg must not shed.
  config.metrics = &metrics;
  ServeDaemon daemon(config);
  daemon.Publish(BuildSnapshot(4));
  ASSERT_TRUE(daemon.Start().ok());

  constexpr uint64_t kRequests = 240;
  LoadGenConfig load_cfg;
  const LoadGenerator gen(*world_, load_cfg);

  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> ok{0};
  std::array<std::atomic<uint64_t>, 2> by_generation{};

  // Swap mid-stream: a second generation (different shard count — the
  // merge contract makes it serve identical results) is built on a side
  // thread and published while clients are submitting.
  std::thread publisher([&] {
    auto next = BuildSnapshot(2);
    while (answered.load(std::memory_order_acquire) < kRequests / 4) {
      std::this_thread::yield();
    }
    daemon.Publish(std::move(next));
  });

  std::vector<std::thread> clients;
  for (unsigned c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (uint64_t i = c; i < kRequests; i += 2) {
        const LoadRequest load = gen.Request(i);
        ServeRequest request;
        request.id = i;
        request.query = load.query;
        request.k = load_cfg.top_k;
        request.done = [&](ServeResponse&& response) {
          if (response.outcome == ServeOutcome::kOk) {
            ok.fetch_add(1, std::memory_order_relaxed);
            by_generation[response.generation - 1].fetch_add(
                1, std::memory_order_relaxed);
          }
          answered.fetch_add(1, std::memory_order_relaxed);
        };
        ASSERT_TRUE(daemon.Submit(std::move(request)));
      }
    });
  }
  for (auto& t : clients) t.join();
  publisher.join();
  daemon.Stop();  // Graceful drain answers everything still queued.

  // Zero downtime: every request answered, none failed or shed.
  EXPECT_EQ(answered.load(), kRequests);
  EXPECT_EQ(ok.load(), kRequests);
  EXPECT_EQ(metrics.GetCounter("ckr.serve.shed_queue_full")->Value(), 0u);
  EXPECT_EQ(metrics.GetCounter("ckr.serve.no_snapshot")->Value(), 0u);
  EXPECT_EQ(metrics.GetCounter("ckr.serve.snapshot_swaps")->Value(), 1u);
  // The swap landed mid-stream (the publisher gate guarantees gen 1
  // served some) and the retired generation was reclaimed.
  EXPECT_GT(by_generation[0].load(), 0u);
  EXPECT_EQ(by_generation[0].load() + by_generation[1].load(), kRequests);
  EXPECT_EQ(daemon.CurrentGeneration(), 2u);
  EXPECT_EQ(daemon.LiveGenerations(), 1);
}

TEST_F(ServeSmokeTest, OverloadShedsAtAdmissionAndAnswersEverything) {
  obs::MetricRegistry metrics;
  ServeDaemonConfig config;
  config.num_workers = 1;
  config.queue_capacity = 2;
  config.metrics = &metrics;
  ServeDaemon daemon(config);
  daemon.Publish(BuildSnapshot(2));
  ASSERT_TRUE(daemon.Start().ok());

  // Park the only worker so the 2-slot queue must overflow.
  std::promise<void> parked;
  std::promise<void> release;
  std::future<void> release_future = release.get_future();
  ServeRequest blocker;
  blocker.query = "warmup";
  blocker.done = [&](ServeResponse&&) {
    parked.set_value();
    release_future.wait();
  };
  ASSERT_TRUE(daemon.Submit(std::move(blocker)));
  parked.get_future().wait();

  LoadGenConfig load_cfg;
  const LoadGenerator gen(*world_, load_cfg);
  std::atomic<uint64_t> answered{0};
  uint64_t accepted = 0, shed = 0;
  constexpr uint64_t kOffered = 16;
  for (uint64_t i = 0; i < kOffered; ++i) {
    ServeRequest request;
    request.query = gen.Request(i).query;
    request.done = [&](ServeResponse&&) {
      answered.fetch_add(1, std::memory_order_relaxed);
    };
    if (daemon.Submit(std::move(request))) {
      ++accepted;
    } else {
      ++shed;  // Callback already ran synchronously with kShedQueueFull.
    }
  }
  // Queue capacity 2 and a parked worker: exactly 2 fit, the rest shed
  // in microseconds instead of queueing unboundedly.
  EXPECT_EQ(accepted, 2u);
  EXPECT_EQ(shed, kOffered - 2);
  EXPECT_EQ(metrics.GetCounter("ckr.serve.shed_queue_full")->Value(), shed);

  release.set_value();
  daemon.Stop();
  // Every offered request was answered exactly once (sheds synchronously,
  // accepted ones by the drain).
  EXPECT_EQ(answered.load(), kOffered);
  EXPECT_EQ(metrics.GetCounter("ckr.serve.completed")->Value(),
            accepted + 1);  // +1 for the parked warmup request.
}

}  // namespace
}  // namespace ckr
