// Unit tests for ckr_common: Status, RNG, samplers, hashing, strings.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cwchar>
#include <map>
#include <set>

#include "common/epoch_set.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace ckr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be > 0");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "k must be > 0");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be > 0");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(Status::InvalidArgument("").code());
  codes.insert(Status::NotFound("").code());
  codes.insert(Status::AlreadyExists("").code());
  codes.insert(Status::OutOfRange("").code());
  codes.insert(Status::FailedPrecondition("").code());
  codes.insert(Status::Internal("").code());
  codes.insert(Status::IOError("").code());
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

Status FailThenPropagate() {
  CKR_RETURN_IF_ERROR(Status::Internal("boom"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  Status s = FailThenPropagate();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedCoversRangeUniformly) {
  Rng rng(99);
  std::map<uint64_t, int> counts;
  const int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(6)];
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [value, count] : counts) {
    EXPECT_LT(value, 6u);
    // Each bucket should hold ~1/6 of draws (10000), within 10%.
    EXPECT_NEAR(count, kDraws / 6, kDraws / 60);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(1234);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateMatchesP) {
  Rng rng(8);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(10);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(21);
  auto perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng parent(42);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(1000, 1.1);
  double total = 0;
  for (size_t r = 1; r <= 1000; ++r) total += zipf.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankOneMostFrequent) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(77);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  // Monotone-ish decay: rank 1 beats rank 10 beats rank 100.
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfTest, SampleInRange) {
  ZipfSampler zipf(10, 1.5);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    size_t r = zipf.Sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 10u);
  }
}

TEST(HashTest, Fnv1aKnownValues) {
  // FNV-1a 64 reference: hash of "" is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_EQ(Fnv1a64("concept"), Fnv1a64("concept"));
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t a = Mix64(0x1234567890abcdefULL);
  uint64_t b = Mix64(0x1234567890abcdeeULL);
  int diff = __builtin_popcountll(a ^ b);
  EXPECT_GT(diff, 16);
  EXPECT_LT(diff, 48);
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  auto parts = SplitString("a,,b, c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, "-"), "x-y-z");
  EXPECT_EQ(JoinStrings({}, "-"), "");
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Hello WORLD 123"), "hello world 123");
}

TEST(StringUtilTest, TrimView) {
  EXPECT_EQ(TrimView("  hi \n"), "hi");
  EXPECT_EQ(TrimView("\t\n  "), "");
  EXPECT_EQ(TrimView("abc"), "abc");
}

TEST(StringUtilTest, StripSurroundingPunct) {
  EXPECT_EQ(StripSurroundingPunct("(obama,"), "obama");
  EXPECT_EQ(StripSurroundingPunct("u.s."), "u.s");
  EXPECT_EQ(StripSurroundingPunct("..."), "");
  EXPECT_EQ(StripSurroundingPunct("plain"), "plain");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("contextual", "con"));
  EXPECT_FALSE(StartsWith("con", "contextual"));
  EXPECT_TRUE(EndsWith("ranking", "ing"));
  EXPECT_FALSE(EndsWith("ing", "ranking"));
}

TEST(ParallelTest, CoversAllIndicesOnce) {
  for (unsigned threads : {0u, 1u, 2u, 4u, 16u}) {
    std::vector<int> hits(1000, 0);
    ParallelFor(hits.size(), threads, [&](size_t i) { ++hits[i]; });
    for (int h : hits) ASSERT_EQ(h, 1) << "threads=" << threads;
  }
}

TEST(ParallelTest, EmptyAndSingle) {
  ParallelFor(0, 8, [](size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  ParallelFor(1, 8, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelTest, MoreThreadsThanWork) {
  std::vector<int> hits(3, 0);
  ParallelFor(hits.size(), 64, [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0] + hits[1] + hits[2], 3);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StringUtilTest, StrFormatEncodingErrorReturnsSentinel) {
  // A wide character outside the encodable range makes vsnprintf return
  // a negative count (EILSEQ). The result must be the distinguishable
  // sentinel, never a silently empty string or a (size_t)-1 resize.
  EXPECT_EQ(StrFormat("%lc", static_cast<wint_t>(0x110000)), "<format-error>");
  const wchar_t bad[2] = {static_cast<wchar_t>(0x110000), L'\0'};
  EXPECT_EQ(StrFormat("before %ls after", bad), "<format-error>");
  // A legitimately empty expansion stays "", not the sentinel.
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(ParallelWorkersTest, CoversAllIndicesOnceWithValidWorkerIds) {
  for (unsigned threads : {0u, 1u, 2u, 4u, 16u}) {
    std::vector<int> hits(1000, 0);
    std::vector<std::atomic<int>> worker_hits(16);
    ParallelForWorkers(hits.size(), threads, [&](unsigned worker, size_t i) {
      ASSERT_LT(worker, std::max(threads, 1u));
      ++hits[i];
      ++worker_hits[worker];
    });
    for (int h : hits) ASSERT_EQ(h, 1) << "threads=" << threads;
    int total = 0;
    for (auto& w : worker_hits) total += w.load();
    EXPECT_EQ(total, 1000) << "threads=" << threads;
  }
}

TEST(ParallelWorkersTest, EmptySingleAndOversubscribed) {
  ParallelForWorkers(0, 8, [](unsigned, size_t) {
    FAIL() << "must not be called";
  });
  int calls = 0;
  ParallelForWorkers(1, 8, [&](unsigned worker, size_t i) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  std::vector<int> hits(3, 0);
  ParallelForWorkers(hits.size(), 64, [&](unsigned, size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0] + hits[1] + hits[2], 3);
}

TEST(EpochSetTest, InsertContainsAndDuplicates) {
  EpochSet set;
  set.Reset(100);
  EXPECT_EQ(set.size(), 0u);
  EXPECT_TRUE(set.Insert(5));
  EXPECT_TRUE(set.Insert(99));
  EXPECT_FALSE(set.Insert(5));  // Duplicate.
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(5));
  EXPECT_TRUE(set.Contains(99));
  EXPECT_FALSE(set.Contains(0));
  // Out of universe: rejected by both operations.
  EXPECT_FALSE(set.Insert(100));
  EXPECT_FALSE(set.Contains(100));
}

TEST(EpochSetTest, ResetClearsWithoutShrinkingUniverse) {
  EpochSet set;
  set.Reset(10);
  for (uint32_t v = 0; v < 10; ++v) EXPECT_TRUE(set.Insert(v));
  set.Reset(10);
  EXPECT_EQ(set.size(), 0u);
  for (uint32_t v = 0; v < 10; ++v) EXPECT_FALSE(set.Contains(v));
  EXPECT_TRUE(set.Insert(3));
  // Growing the universe preserves O(1) clearing semantics.
  set.Reset(1000);
  EXPECT_FALSE(set.Contains(3));
  EXPECT_TRUE(set.Insert(999));
  EXPECT_TRUE(set.Contains(999));
}

TEST(EpochSetTest, ManyResetsStayCorrect) {
  EpochSet set;
  for (int round = 0; round < 1000; ++round) {
    set.Reset(16);
    uint32_t v = static_cast<uint32_t>(round % 16);
    EXPECT_FALSE(set.Contains(v));
    EXPECT_TRUE(set.Insert(v));
    EXPECT_TRUE(set.Contains(v));
  }
}

}  // namespace
}  // namespace ckr
