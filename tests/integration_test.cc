// Cross-module integration and edge-case tests: determinism of the full
// pipeline, dataset configuration variants, and runtime edge behaviour.
#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/pipeline.h"
#include "framework/runtime_ranker.h"
#include "text/html.h"

namespace ckr {
namespace {

TEST(PipelineDeterminismTest, IdenticalConfigsYieldIdenticalWorlds) {
  PipelineConfig cfg = PipelineConfig::SmallForTests();
  auto a = Pipeline::Build(cfg);
  auto b = Pipeline::Build(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ((*a)->world().NumEntities(), (*b)->world().NumEntities());
  EXPECT_EQ((*a)->query_log().NumDistinctQueries(),
            (*b)->query_log().NumDistinctQueries());
  EXPECT_EQ((*a)->units().size(), (*b)->units().size());
  EXPECT_EQ((*a)->news_stories()[3].text, (*b)->news_stories()[3].text);

  auto ds_a = DatasetBuilder(**a, {}).Build();
  auto ds_b = DatasetBuilder(**b, {}).Build();
  ASSERT_TRUE(ds_a.ok() && ds_b.ok());
  ASSERT_EQ(ds_a->instances.size(), ds_b->instances.size());
  for (size_t i = 0; i < ds_a->instances.size(); i += 37) {
    EXPECT_EQ(ds_a->instances[i].key, ds_b->instances[i].key);
    EXPECT_DOUBLE_EQ(ds_a->instances[i].ctr, ds_b->instances[i].ctr);
    EXPECT_DOUBLE_EQ(ds_a->instances[i].baseline_score,
                     ds_b->instances[i].baseline_score);
  }
}

TEST(PipelineDeterminismTest, DifferentSeedsDiffer) {
  PipelineConfig cfg = PipelineConfig::SmallForTests();
  auto a = Pipeline::Build(cfg);
  cfg.world.seed ^= 1;
  auto b = Pipeline::Build(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE((*a)->news_stories()[0].text, (*b)->news_stories()[0].text);
}

class DatasetVariantsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto p = Pipeline::Build(PipelineConfig::SmallForTests());
    ASSERT_TRUE(p.ok());
    pipeline_ = p->release();
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static Pipeline* pipeline_;
};

Pipeline* DatasetVariantsTest::pipeline_ = nullptr;

TEST_F(DatasetVariantsTest, NoAnnotationCutYieldsMoreInstances) {
  DatasetConfig cut;
  DatasetConfig no_cut;
  no_cut.max_annotations_per_story = 0;
  auto with = DatasetBuilder(*pipeline_, cut).Build();
  auto without = DatasetBuilder(*pipeline_, no_cut).Build();
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_GT(without->instances.size(), with->instances.size());
}

TEST_F(DatasetVariantsTest, StricterFilterKeepsFewerStories) {
  DatasetConfig loose;
  DatasetConfig strict;
  strict.filter.min_views = 200;
  auto a = DatasetBuilder(*pipeline_, loose).Build();
  auto b = DatasetBuilder(*pipeline_, strict).Build();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(b->surviving_stories.size(), a->surviving_stories.size());
}

TEST_F(DatasetVariantsTest, SmallerWindowsMakeMoreGroups) {
  DatasetConfig big;
  DatasetConfig small;
  small.window_size = 800;
  small.window_overlap = 100;
  auto a = DatasetBuilder(*pipeline_, big).Build();
  auto b = DatasetBuilder(*pipeline_, small).Build();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b->num_windows, a->num_windows);
}

TEST_F(DatasetVariantsTest, FoldCountHonored) {
  DatasetConfig cfg;
  cfg.cv_folds = 3;
  auto ds = DatasetBuilder(*pipeline_, cfg).Build();
  ASSERT_TRUE(ds.ok());
  int max_fold = 0;
  for (int f : ds->story_fold) max_fold = std::max(max_fold, f);
  EXPECT_EQ(max_fold, 2);
}

TEST_F(DatasetVariantsTest, ThreadCountDoesNotChangeResults) {
  DatasetConfig serial;
  serial.num_threads = 1;
  DatasetConfig parallel;
  parallel.num_threads = 4;
  auto a = DatasetBuilder(*pipeline_, serial).Build();
  auto b = DatasetBuilder(*pipeline_, parallel).Build();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->instances.size(), b->instances.size());
  for (size_t i = 0; i < a->instances.size(); ++i) {
    ASSERT_EQ(a->instances[i].key, b->instances[i].key);
    ASSERT_DOUBLE_EQ(a->instances[i].ctr, b->instances[i].ctr);
    ASSERT_DOUBLE_EQ(a->instances[i].relevance[0], b->instances[i].relevance[0]);
  }
}

TEST(RuntimeEdgeTest, EmptyStoresProduceNoAnnotations) {
  std::vector<EntityDetector::DictionaryEntry> dict = {
      {"something", EntityType::kPlace, 0}};
  EntityDetector detector(dict, nullptr, {});
  QuantizedInterestingnessStore interest;
  interest.Finalize();
  GlobalTidTable tids;
  PackedRelevanceStore relevance(&tids);
  relevance.Finalize();
  RankSvmModel model;  // Default-constructed: zero-dimensional.
  RuntimeRanker ranker(detector, interest, relevance, tids, model);
  RuntimeStats stats;
  auto out = ranker.ProcessDocument("something happened here", &stats);
  EXPECT_TRUE(out.empty());  // No store entry -> candidate skipped.
  EXPECT_EQ(stats.documents, 1u);
}

TEST(RuntimeEdgeTest, EmptyDocument) {
  std::vector<EntityDetector::DictionaryEntry> dict = {
      {"x y", EntityType::kPlace, 0}};
  EntityDetector detector(dict, nullptr, {});
  QuantizedInterestingnessStore interest;
  interest.Finalize();
  GlobalTidTable tids;
  PackedRelevanceStore relevance(&tids);
  relevance.Finalize();
  RuntimeRanker ranker(detector, interest, relevance, tids, RankSvmModel());
  EXPECT_TRUE(ranker.ProcessDocument("").empty());
}

TEST(HtmlEdgeTest, TruncatedAndHostileInput) {
  EXPECT_EQ(StripHtml("text <unclosed"), "text ");
  EXPECT_EQ(StripHtml("<script>never closed"), "");
  EXPECT_EQ(StripHtml("<!-- never closed"), "");
  EXPECT_EQ(StripHtml("&;"), "&;");
  EXPECT_EQ(StripHtml("&#99999;"), " ");  // Non-ASCII code point.
  EXPECT_EQ(StripHtml(""), "");
}

}  // namespace
}  // namespace ckr
