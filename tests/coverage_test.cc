// Focused edge-case coverage for paths not exercised elsewhere:
// detector options, query-mix extremes, unit-extractor caps, store-pack
// corruption, sentence-boundary details, runtime stats bookkeeping.
#include <gtest/gtest.h>

#include "corpus/world.h"
#include "detect/entity_detector.h"
#include "framework/binary_io.h"
#include "framework/store_pack.h"
#include "querylog/query_generator.h"
#include "text/sentence.h"
#include "units/unit_extractor.h"

namespace ckr {
namespace {

TEST(DetectorOptionsTest, MinConceptCharsFiltersShortSingles) {
  UnitDictionary units;
  units.Add({"ab", 1, 100, 0.0, 0.9});       // 2 chars, single-term.
  units.Add({"abcdef", 1, 100, 0.0, 0.9});   // Long single-term.
  DetectorOptions opts;
  opts.min_concept_chars = 3;
  EntityDetector detector({}, &units, opts);
  // Single-term units are always ignored as concept candidates; only
  // multi-term units enter the candidate set.
  EXPECT_EQ(detector.NumConceptEntries(), 0u);
}

TEST(DetectorOptionsTest, MultiTermUnitsBecomeCandidates) {
  UnitDictionary units;
  units.Add({"ab cd", 2, 100, 1.0, 0.9});
  EntityDetector detector({}, &units, {});
  EXPECT_EQ(detector.NumConceptEntries(), 1u);
  auto dets = detector.Detect("ab cd appears here");
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].key, "ab cd");
}

TEST(DetectorOptionsTest, EmptyDictionaryDetectsNothing) {
  EntityDetector detector({}, nullptr, {});
  EXPECT_TRUE(detector.Detect("any text at all").empty());
  EXPECT_EQ(detector.NumDictionaryEntries(), 0u);
}

TEST(QueryMixTest, AllEntityTraffic) {
  WorldConfig wcfg;
  wcfg.num_topics = 4;
  wcfg.background_vocab = 400;
  wcfg.words_per_topic = 30;
  wcfg.num_named_entities = 60;
  wcfg.num_concepts = 30;
  wcfg.num_generic_concepts = 5;
  auto world = World::Create(wcfg);
  ASSERT_TRUE(world.ok());
  QueryGeneratorConfig qcfg;
  qcfg.num_submissions = 5000;
  qcfg.entity_query_prob = 1.0;
  qcfg.exact_prob = 1.0;  // Every query is an exact entity surface.
  qcfg.context_prob = 0.0;
  QueryLog log = QueryGenerator(**world, qcfg).Generate();
  // Every distinct query must be an entity key.
  for (const QueryEntry& q : log.entries()) {
    EXPECT_NE((*world)->FindByKey(q.text), kInvalidEntity) << q.text;
  }
}

TEST(QueryMixTest, AllBackgroundTraffic) {
  WorldConfig wcfg;
  wcfg.num_topics = 4;
  wcfg.background_vocab = 400;
  wcfg.words_per_topic = 30;
  wcfg.num_named_entities = 60;
  wcfg.num_concepts = 30;
  wcfg.num_generic_concepts = 5;
  auto world = World::Create(wcfg);
  ASSERT_TRUE(world.ok());
  QueryGeneratorConfig qcfg;
  qcfg.num_submissions = 5000;
  qcfg.entity_query_prob = 0.0;
  QueryLog log = QueryGenerator(**world, qcfg).Generate();
  EXPECT_EQ(log.TotalSubmissions(), 5000u);
  // Multi-term entity keys should essentially never appear exactly.
  size_t exact_hits = 0;
  for (const Entity& e : (*world)->entities()) {
    if (e.TermCount() >= 2 && log.ExactFreq(e.key) > 0) ++exact_hits;
  }
  EXPECT_LT(exact_hits, 3u);
}

TEST(UnitCapTest, MaxUnitsBoundsDictionary) {
  QueryLog log;
  for (int i = 0; i < 50; ++i) {
    log.AddQuery("w" + std::to_string(i), 20);
  }
  log.Finalize();
  UnitExtractorConfig cfg;
  cfg.min_term_freq = 1;
  cfg.max_units = 10;
  auto dict = UnitExtractor(cfg).Extract(log);
  ASSERT_TRUE(dict.ok());
  // Single-term units are admitted before the cap applies to growth;
  // multi-term growth must respect the cap.
  EXPECT_LE(dict->MultiTermUnits().size(), 10u);
}

TEST(StorePackTest, TrailingBytesRejected) {
  GlobalTidTable tids;
  tids.Intern("alpha");
  QuantizedInterestingnessStore interest;
  interest.Finalize();
  PackedRelevanceStore relevance(&tids);
  relevance.Finalize();
  std::string blob =
      SerializeStorePack(tids, interest, relevance, RankSvmModel());
  EXPECT_TRUE(StorePack::Deserialize(blob).ok());
  blob += "junk";
  auto bad = StorePack::Deserialize(blob);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StorePackTest, TruncatedBlobRejected) {
  GlobalTidTable tids;
  tids.Intern("alpha");
  QuantizedInterestingnessStore interest;
  interest.Finalize();
  PackedRelevanceStore relevance(&tids);
  relevance.Finalize();
  std::string blob =
      SerializeStorePack(tids, interest, relevance, RankSvmModel());
  for (size_t cut : {blob.size() / 4, blob.size() / 2, blob.size() - 1}) {
    EXPECT_FALSE(StorePack::Deserialize(blob.substr(0, cut)).ok()) << cut;
  }
}

TEST(SentenceEdgeTest, ExclamationAndQuestionChains) {
  auto spans = DetectSentences("Really?! Yes! Sure.");
  // "Really?" then "!" merges into trailing handling; at minimum the three
  // logical sentences are separated without losing text.
  ASSERT_GE(spans.size(), 2u);
  EXPECT_EQ(spans.front().begin, 0u);
}

TEST(SentenceEdgeTest, QuotedSentenceEnd) {
  std::string text = "He said \"stop.\" Then he left.";
  auto spans = DetectSentences(text);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(text.substr(spans[1].begin, spans[1].size()), "Then he left.");
}

TEST(SentenceEdgeTest, NoTerminatorYieldsOneSentence) {
  auto spans = DetectSentences("no terminator here");
  ASSERT_EQ(spans.size(), 1u);
}

TEST(WorldEdgeTest, PlacesCarryGeoMetadata) {
  WorldConfig cfg;
  cfg.num_topics = 4;
  cfg.background_vocab = 400;
  cfg.words_per_topic = 30;
  cfg.num_named_entities = 200;
  cfg.num_concepts = 20;
  cfg.num_generic_concepts = 5;
  auto world = World::Create(cfg);
  ASSERT_TRUE(world.ok());
  size_t places = 0;
  for (const Entity& e : (*world)->entities()) {
    if (e.type != EntityType::kPlace) continue;
    ++places;
    EXPECT_GE(e.latitude, -90.0f);
    EXPECT_LE(e.latitude, 90.0f);
    EXPECT_GE(e.longitude, -180.0f);
    EXPECT_LE(e.longitude, 180.0f);
  }
  EXPECT_GT(places, 10u);
}

TEST(WorldEdgeTest, TypePriorsShiftInterestingness) {
  WorldConfig cfg;
  cfg.num_topics = 6;
  cfg.background_vocab = 500;
  cfg.words_per_topic = 30;
  cfg.num_named_entities = 600;
  cfg.num_concepts = 20;
  cfg.num_generic_concepts = 5;
  auto world = World::Create(cfg);
  ASSERT_TRUE(world.ok());
  double person_sum = 0, animal_sum = 0;
  size_t person_n = 0, animal_n = 0;
  for (const Entity& e : (*world)->entities()) {
    if (e.type == EntityType::kPerson) {
      person_sum += e.interestingness;
      ++person_n;
    } else if (e.type == EntityType::kAnimal) {
      animal_sum += e.interestingness;
      ++animal_n;
    }
  }
  ASSERT_GT(person_n, 20u);
  ASSERT_GT(animal_n, 5u);
  EXPECT_GT(person_sum / static_cast<double>(person_n),
            animal_sum / static_cast<double>(animal_n) + 0.1);
}

}  // namespace
}  // namespace ckr
