// Unit tests for ckr_corpus: taxonomy, vocabulary, world, document
// generation, term dictionary.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "corpus/doc_generator.h"
#include "corpus/document.h"
#include "corpus/taxonomy.h"
#include "corpus/term_dictionary.h"
#include "corpus/vocabulary.h"
#include "corpus/world.h"
#include "common/string_util.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace ckr {
namespace {

WorldConfig SmallConfig() {
  WorldConfig cfg;
  cfg.num_topics = 6;
  cfg.background_vocab = 600;
  cfg.words_per_topic = 40;
  cfg.num_named_entities = 120;
  cfg.num_concepts = 80;
  cfg.num_generic_concepts = 12;
  cfg.num_web_docs = 60;
  cfg.num_news_stories = 30;
  cfg.num_answers_snippets = 20;
  return cfg;
}

TEST(TaxonomyTest, EveryDictionaryTypeHasSubtypes) {
  Taxonomy tax;
  for (EntityType t : {EntityType::kPerson, EntityType::kPlace,
                       EntityType::kOrganization, EntityType::kEvent,
                       EntityType::kAnimal, EntityType::kProduct}) {
    EXPECT_FALSE(tax.Subtypes(t).empty()) << EntityTypeName(t);
  }
  EXPECT_GT(tax.NodeCount(), 30u);
}

TEST(TaxonomyTest, TypeNameRoundTrip) {
  for (int i = 0; i < kNumEntityTypes; ++i) {
    EntityType t = static_cast<EntityType>(i);
    EXPECT_EQ(ParseEntityType(EntityTypeName(t)), t);
  }
  EXPECT_EQ(ParseEntityType("no-such-type"), EntityType::kConcept);
}

TEST(VocabularyTest, SizesAndLookup) {
  Vocabulary vocab(500, 4, 30, 1);
  EXPECT_EQ(vocab.size(), 500u + 4 * 30);
  WordId id = 0;
  EXPECT_TRUE(vocab.Lookup(vocab.Word(37), &id));
  EXPECT_EQ(id, 37u);
  EXPECT_FALSE(vocab.Lookup("definitely-not-a-word", &id));
}

TEST(VocabularyTest, WordsAreUniqueAndNotStopwords) {
  Vocabulary vocab(800, 4, 30, 2);
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < vocab.size(); ++i) {
    const std::string& w = vocab.Word(static_cast<WordId>(i));
    EXPECT_TRUE(seen.insert(w).second) << "duplicate: " << w;
    EXPECT_FALSE(IsStopWord(w)) << w;
  }
}

TEST(VocabularyTest, TopicOfIsConsistent) {
  Vocabulary vocab(300, 5, 20, 3);
  for (size_t t = 0; t < 5; ++t) {
    for (WordId id : vocab.TopicWords(t)) {
      EXPECT_EQ(vocab.TopicOf(id), static_cast<int>(t));
      EXPECT_TRUE(vocab.IsTopicWord(id, t));
    }
  }
  EXPECT_EQ(vocab.TopicOf(0), -1);  // Background word.
}

TEST(VocabularyTest, BackgroundSamplingIsZipfian) {
  Vocabulary vocab(1000, 2, 10, 4);
  Rng rng(5);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[vocab.SampleBackground(rng)];
  // Low ids (top ranks) dominate.
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(VocabularyTest, TopicSamplingMixesTopicWords) {
  Vocabulary vocab(500, 3, 25, 6);
  Rng rng(7);
  int topic_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    WordId id = vocab.SampleForTopic(1, 0.4, rng);
    if (vocab.IsTopicWord(id, 1)) ++topic_hits;
  }
  EXPECT_NEAR(topic_hits / static_cast<double>(n), 0.4, 0.03);
}

TEST(WorldTest, InvalidConfigRejected) {
  WorldConfig cfg = SmallConfig();
  cfg.num_topics = 0;
  EXPECT_FALSE(World::Create(cfg).ok());
  cfg = SmallConfig();
  cfg.topic_word_prob = 1.5;
  EXPECT_FALSE(World::Create(cfg).ok());
  cfg = SmallConfig();
  cfg.on_topic_entities_min = 9;
  cfg.on_topic_entities_max = 3;
  EXPECT_FALSE(World::Create(cfg).ok());
}

TEST(WorldTest, EntityPopulationShape) {
  auto world_or = World::Create(SmallConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status().ToString();
  const World& world = **world_or;
  // A couple of duplicate-key skips are tolerated.
  EXPECT_GE(world.NumEntities(), 190u);
  size_t dict = 0, concepts = 0, generic = 0;
  for (const Entity& e : world.entities()) {
    EXPECT_FALSE(e.key.empty());
    EXPECT_GE(e.interestingness, 0.0);
    EXPECT_LE(e.interestingness, 1.0);
    EXPECT_GE(e.popularity, 0.0);
    EXPECT_LE(e.popularity, 1.0);
    if (e.in_dictionary) ++dict;
    if (e.type == EntityType::kConcept && !e.is_generic) ++concepts;
    if (e.is_generic) ++generic;
    EXPECT_GE(e.primary_topic, 0);
    EXPECT_LT(e.primary_topic, 6);
  }
  EXPECT_GT(dict, 100u);
  EXPECT_GT(concepts, 60u);
  EXPECT_GT(generic, 5u);
}

TEST(WorldTest, KeysAreNormalizedAndIndexed) {
  auto world_or = World::Create(SmallConfig());
  ASSERT_TRUE(world_or.ok());
  const World& world = **world_or;
  for (const Entity& e : world.entities()) {
    EXPECT_EQ(e.key, NormalizePhrase(e.surface));
    EXPECT_EQ(world.FindByKey(e.key), e.id);
  }
  EXPECT_EQ(world.FindByKey("zz zz zz"), kInvalidEntity);
}

TEST(WorldTest, DeterministicAcrossConstructions) {
  auto w1 = World::Create(SmallConfig());
  auto w2 = World::Create(SmallConfig());
  ASSERT_TRUE(w1.ok() && w2.ok());
  ASSERT_EQ((*w1)->NumEntities(), (*w2)->NumEntities());
  for (size_t i = 0; i < (*w1)->NumEntities(); ++i) {
    const Entity& a = (*w1)->entity(static_cast<EntityId>(i));
    const Entity& b = (*w2)->entity(static_cast<EntityId>(i));
    EXPECT_EQ(a.surface, b.surface);
    EXPECT_DOUBLE_EQ(a.interestingness, b.interestingness);
  }
}

TEST(WorldTest, GenericConceptsComeFromFrequentWords) {
  auto world_or = World::Create(SmallConfig());
  ASSERT_TRUE(world_or.ok());
  const World& world = **world_or;
  for (EntityId id : world.GenericConcepts()) {
    const Entity& e = world.entity(id);
    EXPECT_TRUE(e.is_generic);
    // Every constituent word is a top background word.
    for (const std::string& tok : SplitString(e.key, " ")) {
      WordId wid = 0;
      ASSERT_TRUE(world.vocabulary().Lookup(tok, &wid)) << tok;
      EXPECT_LT(wid, 160u);
    }
  }
}

TEST(WorldTest, OffTopicSamplerAvoidsTopic) {
  auto world_or = World::Create(SmallConfig());
  ASSERT_TRUE(world_or.ok());
  const World& world = **world_or;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    EntityId id = world.SampleOffTopicEntity(2, rng);
    ASSERT_NE(id, kInvalidEntity);
    const Entity& e = world.entity(id);
    EXPECT_NE(e.primary_topic, 2);
    EXPECT_NE(e.secondary_topic, 2);
  }
}

class DocGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto world_or = World::Create(SmallConfig());
    ASSERT_TRUE(world_or.ok());
    world_ = std::move(*world_or);
    gen_ = std::make_unique<DocGenerator>(*world_);
  }
  std::unique_ptr<World> world_;
  std::unique_ptr<DocGenerator> gen_;
};

TEST_F(DocGeneratorTest, MentionOffsetsMatchText) {
  for (DocId id = 0; id < 20; ++id) {
    Document doc = gen_->Generate(Document::Kind::kNews, id);
    ASSERT_FALSE(doc.text.empty());
    ASSERT_FALSE(doc.mentions.empty());
    for (const MentionTruth& m : doc.mentions) {
      ASSERT_LE(m.end, doc.text.size());
      std::string span = doc.text.substr(m.begin, m.end - m.begin);
      EXPECT_EQ(span, world_->entity(m.entity).surface);
      EXPECT_GE(m.relevance, 0.0);
      EXPECT_LE(m.relevance, 1.0);
    }
  }
}

TEST_F(DocGeneratorTest, MentionsAreSortedByPosition) {
  Document doc = gen_->Generate(Document::Kind::kNews, 3);
  for (size_t i = 1; i < doc.mentions.size(); ++i) {
    EXPECT_GE(doc.mentions[i].begin, doc.mentions[i - 1].begin);
  }
}

TEST_F(DocGeneratorTest, DeterministicPerId) {
  Document a = gen_->Generate(Document::Kind::kWeb, 17);
  Document b = gen_->Generate(Document::Kind::kWeb, 17);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.mentions.size(), b.mentions.size());
  Document c = gen_->Generate(Document::Kind::kWeb, 18);
  EXPECT_NE(a.text, c.text);
}

TEST_F(DocGeneratorTest, OnTopicMentionsMoreRelevantThanOffTopic) {
  double on_sum = 0, off_sum = 0;
  int on_n = 0, off_n = 0;
  for (DocId id = 0; id < 60; ++id) {
    Document doc = gen_->Generate(Document::Kind::kNews, id);
    for (const MentionTruth& m : doc.mentions) {
      const Entity& e = world_->entity(m.entity);
      bool on_topic = e.primary_topic == doc.topic ||
                      e.secondary_topic == doc.topic;
      if (e.is_generic) continue;
      if (on_topic) {
        on_sum += m.relevance;
        ++on_n;
      } else {
        off_sum += m.relevance;
        ++off_n;
      }
    }
  }
  ASSERT_GT(on_n, 0);
  ASSERT_GT(off_n, 0);
  EXPECT_GT(on_sum / on_n, off_sum / off_n + 0.2);
}

TEST_F(DocGeneratorTest, AnswersAreShorterThanNews) {
  size_t news_total = 0, ans_total = 0;
  for (DocId id = 0; id < 10; ++id) {
    news_total += gen_->Generate(Document::Kind::kNews, id).text.size();
    ans_total += gen_->Generate(Document::Kind::kAnswers, id).text.size();
  }
  EXPECT_GT(news_total, 2 * ans_total);
}

TEST_F(DocGeneratorTest, TruthRelevanceQueriesMentions) {
  Document doc = gen_->Generate(Document::Kind::kNews, 5);
  ASSERT_FALSE(doc.mentions.empty());
  const MentionTruth& m = doc.mentions[0];
  EXPECT_GE(doc.TruthRelevance(m.entity), m.relevance);
  EXPECT_EQ(doc.TruthRelevance(kInvalidEntity), 0.0);
}

TEST_F(DocGeneratorTest, CorpusGenerationCount) {
  auto docs = gen_->GenerateCorpus(Document::Kind::kWeb, 25);
  ASSERT_EQ(docs.size(), 25u);
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(docs[i].id, static_cast<DocId>(i));
    EXPECT_EQ(docs[i].kind, Document::Kind::kWeb);
  }
}

TEST(TermDictionaryTest, CountsDocumentFrequencies) {
  TermDictionary dict;
  dict.AddDocument("apple banana apple");
  dict.AddDocument("banana cherry");
  dict.AddDocument("durian");
  EXPECT_EQ(dict.NumDocs(), 3u);
  EXPECT_EQ(dict.DocFreq("apple"), 1u);   // Per-doc, not per-occurrence.
  EXPECT_EQ(dict.DocFreq("banana"), 2u);
  EXPECT_EQ(dict.DocFreq("missing"), 0u);
}

TEST(TermDictionaryTest, IdfOrderingAndPositivity) {
  TermDictionary dict;
  for (int i = 0; i < 100; ++i) {
    dict.AddDocument(i % 2 == 0 ? "common rare0" : "common");
  }
  EXPECT_GT(dict.Idf("rare0"), dict.Idf("common"));
  EXPECT_GT(dict.Idf("common"), 0.0);
  EXPECT_GT(dict.Idf("never-seen"), dict.Idf("rare0"));
}

TEST(TermDictionaryTest, BuildFromCorpus) {
  auto world_or = World::Create(SmallConfig());
  ASSERT_TRUE(world_or.ok());
  DocGenerator gen(**world_or);
  auto docs = gen.GenerateCorpus(Document::Kind::kWeb, 40);
  TermDictionary dict;
  dict.Build(docs);
  EXPECT_EQ(dict.NumDocs(), 40u);
  EXPECT_GT(dict.NumTerms(), 200u);
}

}  // namespace
}  // namespace ckr
