// Unit tests for ckr_conceptvec: the Section II-B concept vector.
#include <gtest/gtest.h>

#include "conceptvec/concept_vector.h"
#include "corpus/term_dictionary.h"
#include "units/unit_extractor.h"

namespace ckr {
namespace {

class ConceptVectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Corpus for idf: "common" in most docs; "rare", "insurance", "auto"
    // in few.
    dict_.AddDocument("common words everywhere in all docs");
    dict_.AddDocument("common auto insurance policies");
    dict_.AddDocument("common rare topic");
    for (int i = 0; i < 20; ++i) dict_.AddDocument("common filler text block");

    units_.Add({"auto insurance", 2, 120, 2.5, 0.9});
    units_.Add({"auto", 1, 200, 0.0, 0.6});
    units_.Add({"insurance", 1, 300, 0.0, 0.7});
    units_.Add({"rare", 1, 40, 0.0, 0.3});
  }
  TermDictionary dict_;
  UnitDictionary units_;
};

TEST_F(ConceptVectorTest, StopwordsExcluded) {
  ConceptVectorGenerator gen(dict_, units_, {});
  auto vec = gen.Generate("the and of rare rare rare");
  for (const ConceptScore& c : vec) {
    EXPECT_NE(c.phrase, "the");
    EXPECT_NE(c.phrase, "and");
  }
}

TEST_F(ConceptVectorTest, ScoresSortedDescending) {
  ConceptVectorGenerator gen(dict_, units_, {});
  auto vec = gen.Generate("auto insurance is cheap auto insurance rare");
  ASSERT_GT(vec.size(), 1u);
  for (size_t i = 1; i < vec.size(); ++i) {
    EXPECT_GE(vec[i - 1].score, vec[i].score);
  }
}

TEST_F(ConceptVectorTest, MultiTermUnitPresentAndBoosted) {
  ConceptVectorGenerator gen(dict_, units_, {});
  auto vec = gen.Generate("cheap auto insurance offers today");
  double unit_score = 0, auto_score = 0;
  for (const ConceptScore& c : vec) {
    if (c.phrase == "auto insurance") unit_score = c.score;
    if (c.phrase == "auto") auto_score = c.score;
  }
  ASSERT_GT(unit_score, 0.0);
  // The multi-term bonus pushes the specific concept above its parts.
  EXPECT_GT(unit_score, auto_score);
}

TEST_F(ConceptVectorTest, MultiTermBonusAblation) {
  ConceptVectorConfig with;
  ConceptVectorConfig without;
  without.multi_term_bonus = false;
  ConceptVectorGenerator gen_with(dict_, units_, with);
  ConceptVectorGenerator gen_without(dict_, units_, without);
  const char* text = "cheap auto insurance offers today";
  double s_with = 0, s_without = 0;
  for (const auto& c : gen_with.Generate(text)) {
    if (c.phrase == "auto insurance") s_with = c.score;
  }
  for (const auto& c : gen_without.Generate(text)) {
    if (c.phrase == "auto insurance") s_without = c.score;
  }
  EXPECT_GT(s_with, s_without);
}

TEST_F(ConceptVectorTest, CaseOneTermWithoutUnitIsPunished) {
  // "topic" is in no unit: merged weight = punished term weight.
  ConceptVectorConfig cfg;
  cfg.no_unit_punish_factor = 0.5;
  ConceptVectorGenerator gen(dict_, units_, cfg);
  auto with_unit = gen.Generate("rare rare rare");      // rare is a unit.
  auto without_unit = gen.Generate("topic topic topic");  // topic is not.
  ASSERT_FALSE(with_unit.empty());
  ASSERT_FALSE(without_unit.empty());
  // Both normalize tf*idf to 1.0; "rare" gains its unit weight while
  // "topic" is punished.
  EXPECT_GT(with_unit[0].score, without_unit[0].score);
}

TEST_F(ConceptVectorTest, EmptyAndUnknownText) {
  ConceptVectorGenerator gen(dict_, units_, {});
  EXPECT_TRUE(gen.Generate("").empty());
  EXPECT_TRUE(gen.Generate("the of and").empty());
}

TEST_F(ConceptVectorTest, ScoreCandidatesAlignsWithGenerate) {
  ConceptVectorGenerator gen(dict_, units_, {});
  const char* text = "cheap auto insurance offers rare today";
  auto vec = gen.Generate(text);
  std::vector<std::string> cands = {"auto insurance", "rare", "missing thing"};
  auto scores = gen.ScoreCandidates(text, cands);
  ASSERT_EQ(scores.size(), 3u);
  for (const ConceptScore& c : vec) {
    if (c.phrase == "auto insurance") {
      EXPECT_DOUBLE_EQ(scores[0], c.score);
    }
    if (c.phrase == "rare") {
      EXPECT_DOUBLE_EQ(scores[1], c.score);
    }
  }
  EXPECT_EQ(scores[2], 0.0);  // Absent single... multi-term with absent parts.
}

TEST_F(ConceptVectorTest, AbsentMultiTermCandidateGetsPartsBonus) {
  ConceptVectorGenerator gen(dict_, units_, {});
  // "rare insurance" is not a unit, but both parts score in the text.
  auto scores = gen.ScoreCandidates("rare insurance words common",
                                    {"rare insurance"});
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_GT(scores[0], 0.0);
}

TEST_F(ConceptVectorTest, RepeatedUnitOccurrencesDoNotAccumulate) {
  ConceptVectorGenerator gen(dict_, units_, {});
  auto once = gen.ScoreCandidates("auto insurance common", {"auto insurance"});
  auto thrice = gen.ScoreCandidates(
      "auto insurance auto insurance auto insurance common",
      {"auto insurance"});
  // Unit weight is presence-based; only term tf grows, so the score grows
  // sublinearly (never 3x).
  EXPECT_LT(thrice[0], 3.0 * once[0]);
}

}  // namespace
}  // namespace ckr
