// Unit tests for the exact-safe signature prefilter: bit packing,
// AND-mask cover semantics, the InvertedIndex phrase-path gate, Hamming
// top-k related documents (tie-breaks), the pattern-window class
// signatures, and the EntityDetector gate. The randomized bit-identity
// sweeps live in property_test.cc; these pin the layout and the edge
// cases directly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/document.h"
#include "detect/entity_detector.h"
#include "detect/pattern_detector.h"
#include "index/doc_signature.h"
#include "index/inverted_index.h"

namespace ckr {
namespace {

Document MakeDoc(DocId id, std::string text) {
  Document d;
  d.id = id;
  d.text = std::move(text);
  return d;
}

// ---- SignatureMatrix packing ----

TEST(SignatureMatrixTest, BitPositionsDeterministicAndInRange) {
  for (uint32_t tid : {0u, 1u, 17u, 123456u}) {
    for (uint32_t probe = 0; probe < 4; ++probe) {
      const uint32_t pos = SignatureBitPosition(tid, probe, 256);
      EXPECT_LT(pos, 256u);
      // Stable: the layout is part of the determinism contract.
      EXPECT_EQ(pos, SignatureBitPosition(tid, probe, 256));
    }
  }
  // Sanity: different tids do not all land on one position.
  EXPECT_NE(SignatureBitPosition(1, 0, 256), SignatureBitPosition(2, 0, 256));
}

TEST(SignatureMatrixTest, AddTermSetsExactlyTheProbeBits) {
  SignatureMatrix m(SignatureConfig{256, 2});
  m.Reset(1);
  m.AddTerm(0, 42);
  std::vector<uint64_t> expected(m.words_per_row(), 0);
  for (uint32_t p = 0; p < m.probes(); ++p) {
    const uint32_t pos = SignatureBitPosition(42, p, m.bits());
    expected[pos >> 6] |= uint64_t{1} << (pos & 63);
  }
  const Span<const uint64_t> row = m.Row(0);
  ASSERT_EQ(row.size(), expected.size());
  for (size_t w = 0; w < expected.size(); ++w) EXPECT_EQ(row[w], expected[w]);
}

TEST(SignatureMatrixTest, BuildersAgree) {
  const std::vector<uint32_t> tids = {3, 9, 9, 77, 1024};
  SignatureMatrix a(SignatureConfig{192, 3});
  a.Reset(2);
  for (uint32_t t : tids) a.AddTerm(1, t);

  // CSR-style term-major build of the same row.
  SignatureMatrix b(SignatureConfig{192, 3});
  b.Reset(2);
  const std::vector<uint32_t> row1 = {1};
  for (uint32_t t : tids) b.AddTermToRows(t, MakeSpan(row1));

  // Query-side builders.
  std::vector<uint64_t> sig;
  a.BuildSignature(MakeSpan(tids), &sig);
  std::vector<uint64_t> inc(a.words_per_row(), 0);
  for (uint32_t t : tids) a.AddTermToSignature(t, MakeSpan(inc));

  for (size_t w = 0; w < a.words_per_row(); ++w) {
    EXPECT_EQ(a.Row(1)[w], b.Row(1)[w]);
    EXPECT_EQ(a.Row(1)[w], sig[w]);
    EXPECT_EQ(sig[w], inc[w]);
  }
  // Row 0 was never touched.
  for (uint64_t w : a.Row(0)) EXPECT_EQ(w, 0u);
}

TEST(SignatureMatrixTest, CoversAllIsSupersetTest) {
  SignatureMatrix m(SignatureConfig{256, 2});
  m.Reset(1);
  for (uint32_t t : {1u, 2u, 3u}) m.AddTerm(0, t);

  std::vector<uint64_t> sig;
  m.BuildSignature(MakeSpan(std::vector<uint32_t>{1, 3}), &sig);
  EXPECT_TRUE(m.CoversAll(0, MakeSpan(sig)));
  // Duplicate terms OR the same bits: still covered.
  m.BuildSignature(MakeSpan(std::vector<uint32_t>{1, 1, 2, 2}), &sig);
  EXPECT_TRUE(m.CoversAll(0, MakeSpan(sig)));
  // The empty signature is covered by every row (degenerate queries can
  // never be falsely rejected).
  m.BuildSignature(MakeSpan(std::vector<uint32_t>{}), &sig);
  EXPECT_TRUE(m.CoversAll(0, MakeSpan(sig)));

  // Some absent term must be rejected: with 2 probes over 256 bits and
  // only 6 bits set, not every candidate can collide into the row.
  bool rejected_any = false;
  for (uint32_t t = 100; t < 140 && !rejected_any; ++t) {
    m.BuildSignature(MakeSpan(std::vector<uint32_t>{t}), &sig);
    rejected_any = !m.CoversAll(0, MakeSpan(sig));
  }
  EXPECT_TRUE(rejected_any);
}

TEST(SignatureMatrixTest, HammingSimilarityBasics) {
  SignatureMatrix m(SignatureConfig{128, 2});
  m.Reset(3);
  for (uint32_t t : {5u, 6u, 7u}) {
    m.AddTerm(0, t);
    m.AddTerm(1, t);
  }
  m.AddTerm(2, 900);
  // Identical rows score the full width; symmetric in its arguments.
  EXPECT_EQ(m.HammingSimilarity(0, 1), m.bits());
  EXPECT_EQ(m.HammingSimilarity(0, 2), m.HammingSimilarity(2, 0));
  EXPECT_LT(m.HammingSimilarity(0, 2), m.bits());
}

// ---- InvertedIndex integration ----

class SignatureIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Docs 2 and 3 both contain "quick" and "brown" but only docs 0/1
    // contain them adjacently — the seed loop must reject nothing it
    // needs (2 and 3 pass the signature test but fail the window check).
    index_.Add(MakeDoc(10, "the quick brown fox jumps"));
    index_.Add(MakeDoc(11, "quick brown foxes are quick"));
    index_.Add(MakeDoc(12, "quick dogs and brown cats"));
    index_.Add(MakeDoc(13, "brown bread with quick jam"));
    index_.Add(MakeDoc(14, "nothing relevant in here"));
    index_.Finalize();

    IndexBuildOptions off;
    off.build_signature_filter = false;
    ungated_ = InvertedIndex(off);
    ungated_.Add(MakeDoc(10, "the quick brown fox jumps"));
    ungated_.Add(MakeDoc(11, "quick brown foxes are quick"));
    ungated_.Add(MakeDoc(12, "quick dogs and brown cats"));
    ungated_.Add(MakeDoc(13, "brown bread with quick jam"));
    ungated_.Add(MakeDoc(14, "nothing relevant in here"));
    ungated_.Finalize();
  }
  InvertedIndex index_;
  InvertedIndex ungated_;
};

TEST_F(SignatureIndexTest, BuiltByDefaultAndSizedPerDoc) {
  EXPECT_TRUE(index_.has_signatures());
  EXPECT_EQ(index_.signatures().num_rows(), index_.NumDocs());
  EXPECT_FALSE(ungated_.has_signatures());
  EXPECT_GT(index_.MemoryBytes(), ungated_.MemoryBytes());
}

TEST_F(SignatureIndexTest, PhraseCountsMatchUngatedIndex) {
  const char* phrases[] = {"quick brown",  "brown fox",   "quick",
                           "quick dogs",   "brown cats",  "fox jumps",
                           "quick jam",    "dogs quick",  "the quick brown",
                           "quick quick",  "zzz",         "quick zzz",
                           "",             "   ",         "quick quick brown"};
  for (const char* p : phrases) {
    EXPECT_EQ(index_.PhraseResultCount(p), ungated_.PhraseResultCount(p))
        << "phrase: '" << p << "'";
    const auto gated = index_.PhraseSearch(p, 10);
    const auto plain = ungated_.PhraseSearch(p, 10);
    ASSERT_EQ(gated.size(), plain.size()) << "phrase: '" << p << "'";
    for (size_t i = 0; i < gated.size(); ++i) {
      EXPECT_EQ(gated[i].doc, plain[i].doc);
      EXPECT_EQ(gated[i].score, plain[i].score);
    }
  }
}

TEST_F(SignatureIndexTest, DegenerateQueriesAreSafe) {
  // Empty/whitespace-only queries: no terms, nothing matches, and the
  // prefilter must not manufacture a rejection path that changes this.
  EXPECT_EQ(index_.PhraseResultCount(""), 0u);
  EXPECT_EQ(index_.PhraseResultCount("   \t  "), 0u);
  EXPECT_TRUE(index_.PhraseSearch("", 10).empty());
  EXPECT_EQ(index_.RegularResultCount(""), 0u);
  EXPECT_EQ(index_.RegularResultCount("  \t "), 0u);
  EXPECT_TRUE(index_.Search("", 10).empty());
  EXPECT_TRUE(index_.Search("   ", 10).empty());
  // Duplicate terms collapse to one: same count as the single term.
  EXPECT_EQ(index_.RegularResultCount("quick quick quick"),
            index_.RegularResultCount("quick"));
  EXPECT_EQ(index_.PhraseResultCount("quick quick"), 0u);  // Not adjacent.
  auto dup = index_.Search("quick quick", 10);
  auto single = index_.Search("quick", 10);
  ASSERT_EQ(dup.size(), single.size());
  for (size_t i = 0; i < dup.size(); ++i) {
    EXPECT_EQ(dup[i].doc, single[i].doc);
    EXPECT_EQ(dup[i].score, single[i].score);
  }
  // Out-of-vocabulary phrase terms early-exit to zero.
  EXPECT_EQ(index_.PhraseResultCount("quick zzzz"), 0u);
  EXPECT_TRUE(index_.PhraseSearch("zzzz quick", 5).empty());
}

TEST_F(SignatureIndexTest, RelatedDocumentsExcludesSelfAndClampsK) {
  const auto related = index_.RelatedDocuments(10, 100);
  ASSERT_EQ(related.size(), index_.NumDocs() - 1);
  for (const auto& r : related) EXPECT_NE(r.doc, 10u);
  EXPECT_EQ(index_.RelatedDocuments(10, 2).size(), 2u);
  EXPECT_TRUE(index_.RelatedDocuments(10, 0).empty());
  // Unknown doc and signature-less index both return empty.
  EXPECT_TRUE(index_.RelatedDocuments(999, 5).empty());
  EXPECT_TRUE(ungated_.RelatedDocuments(10, 5).empty());
}

TEST(SignatureRelatedTest, RanksSharedVocabularyFirstAndBreaksTiesById) {
  InvertedIndex index;
  // Docs 7 and 3 are token-identical to doc 5; doc 1 shares nothing.
  index.Add(MakeDoc(5, "alpha beta gamma"));
  index.Add(MakeDoc(7, "alpha beta gamma"));
  index.Add(MakeDoc(3, "alpha beta gamma"));
  index.Add(MakeDoc(1, "delta epsilon zeta"));
  index.Finalize();

  const auto related = index.RelatedDocuments(5, 4);
  ASSERT_EQ(related.size(), 3u);
  // Identical token sets tie at full-width similarity; ties break on
  // ascending external id (the Search ranking contract).
  EXPECT_EQ(related[0].doc, 3u);
  EXPECT_EQ(related[1].doc, 7u);
  EXPECT_EQ(related[0].score, related[1].score);
  EXPECT_EQ(related[0].score,
            static_cast<double>(index.signatures().bits()));
  EXPECT_EQ(related[2].doc, 1u);
  EXPECT_LT(related[2].score, related[1].score);
}

TEST(SignatureConfigTest, CustomWidthRoundTrips) {
  IndexBuildOptions opts;
  opts.signature = SignatureConfig{512, 3};
  InvertedIndex index(opts);
  index.Add(MakeDoc(1, "one two three"));
  index.Add(MakeDoc(2, "two three four"));
  index.Finalize();
  EXPECT_TRUE(index.has_signatures());
  EXPECT_EQ(index.signatures().bits(), 512u);
  EXPECT_EQ(index.signatures().words_per_row(), 8u);
  EXPECT_EQ(index.PhraseResultCount("two three"), 2u);
  EXPECT_EQ(index.PhraseResultCount("three two"), 0u);
}

// ---- Pattern window signatures ----

TEST(PatternWindowTest, ClassBits) {
  EXPECT_EQ(PatternWindowSignature(""), 0u);
  EXPECT_EQ(PatternWindowSignature("plain words only"), 0u);
  EXPECT_EQ(PatternWindowSignature("a:b"), kPatternClassUrlColon);
  EXPECT_EQ(PatternWindowSignature("tel 555"), kPatternClassPhoneStart);
  EXPECT_EQ(PatternWindowSignature("+x"), kPatternClassPhoneStart);
  EXPECT_EQ(PatternWindowSignature("(x"), kPatternClassPhoneStart);
  EXPECT_EQ(PatternWindowSignature("a@b"), kPatternClassAt);
  // The "ww" digram must be adjacent; "w.w" is not a www witness.
  EXPECT_EQ(PatternWindowSignature("www"), kPatternClassUrlWww);
  EXPECT_EQ(PatternWindowSignature("w.w"), 0u);
  EXPECT_EQ(PatternWindowSignature("wow wow"), 0u);
  EXPECT_EQ(PatternWindowSignature("http://x.com 555-123-4567"),
            kPatternClassUrlColon | kPatternClassPhoneStart);
}

TEST(PatternWindowTest, GatedScanIdenticalOnBoundaryStraddlers) {
  // Matches placed so their witness bytes straddle the 64-byte window
  // edges: the margin scan must keep those windows.
  const std::string pad(60, 'x');
  const std::string texts[] = {
      pad + " www.example.com and tail words here",
      pad + " https://site.org/path more",
      pad + " 555-123-4567 trailing",
      pad + " bob.smith@mail.example.com end",
      pad + "  " + pad + " nothing at all",
      "",
      "short",
      std::string(200, 'a'),
  };
  for (const std::string& text : texts) {
    std::vector<PatternMatch> gated;
    std::vector<PatternMatch> plain;
    DetectPatternsInto(text, &gated, true);
    DetectPatternsInto(text, &plain, false);
    ASSERT_EQ(gated.size(), plain.size()) << "text: " << text;
    for (size_t i = 0; i < gated.size(); ++i) {
      EXPECT_EQ(gated[i].begin, plain[i].begin);
      EXPECT_EQ(gated[i].end, plain[i].end);
      EXPECT_EQ(static_cast<int>(gated[i].kind),
                static_cast<int>(plain[i].kind));
      EXPECT_EQ(gated[i].text, plain[i].text);
    }
  }
}

// ---- EntityDetector gate ----

TEST(SignatureDetectorTest, GateMatchesUngatedPipeline) {
  std::vector<EntityDetector::DictionaryEntry> dict = {
      {"new york", EntityType::kPlace, 0},
      {"jaguar", EntityType::kConcept, 0},
      {"machine learning", EntityType::kConcept, 0},
  };
  DetectorOptions on;
  DetectorOptions off;
  off.signature_prefilter = false;
  EntityDetector gated(dict, nullptr, on);
  EntityDetector plain(dict, nullptr, off);

  const char* texts[] = {
      "i love new york in the spring",
      "the jaguar prowls",
      "machine learning with a jaguar in new york",
      // Terms present but never forming an entry: the gate may pass the
      // doc, the automaton must still find nothing.
      "york new machine jaguar learning",
      "totally unrelated words about turtles",
      "",
  };
  for (const char* text : texts) {
    const auto a = gated.Detect(text);
    const auto b = plain.Detect(text);
    ASSERT_EQ(a.size(), b.size()) << "text: " << text;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].key, b[i].key);
      EXPECT_EQ(a[i].begin, b[i].begin);
      EXPECT_EQ(a[i].end, b[i].end);
      EXPECT_EQ(static_cast<int>(a[i].type), static_cast<int>(b[i].type));
    }
  }
}

TEST(SignatureDetectorTest, RejectedDocStillReportsPatterns) {
  std::vector<EntityDetector::DictionaryEntry> dict = {
      {"new york", EntityType::kPlace, 0},
  };
  EntityDetector detector(dict, nullptr, DetectorOptions{});
  // No dictionary terms at all — the AC gate rejects the doc — but the
  // pattern stage is independent and must still fire.
  const auto detections =
      detector.Detect("reach me at bob@example.com please");
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].type, EntityType::kPattern);
  EXPECT_EQ(detections[0].surface, "bob@example.com");
}

}  // namespace
}  // namespace ckr
