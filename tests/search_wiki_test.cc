// Unit tests for ckr_search (facade: snippets, result counts, Prisma,
// suggestions) and ckr_wiki.
#include <gtest/gtest.h>

#include <algorithm>

#include "corpus/doc_generator.h"
#include "corpus/term_dictionary.h"
#include "corpus/world.h"
#include "index/inverted_index.h"
#include "querylog/query_generator.h"
#include "search/search_service.h"
#include "wiki/wiki_store.h"

namespace ckr {
namespace {

class SearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldConfig cfg;
    cfg.num_topics = 6;
    cfg.background_vocab = 600;
    cfg.words_per_topic = 40;
    cfg.num_named_entities = 150;
    cfg.num_concepts = 100;
    cfg.num_generic_concepts = 12;
    cfg.num_web_docs = 400;
    world_ = World::Create(cfg)->release();
    DocGenerator gen(*world_);
    docs_ = new std::vector<Document>(
        gen.GenerateCorpus(Document::Kind::kWeb, cfg.num_web_docs));
    dict_ = new TermDictionary();
    dict_->Build(*docs_);
    index_ = new InvertedIndex();
    for (const Document& d : *docs_) index_->Add(d);
    index_->Finalize();
    QueryGeneratorConfig qcfg;
    qcfg.num_submissions = 30000;
    log_ = new QueryLog(QueryGenerator(*world_, qcfg).Generate());
    search_ = new SearchService(*index_, *log_, *dict_);
  }
  static void TearDownTestSuite() {
    delete search_;
    delete log_;
    delete index_;
    delete dict_;
    delete docs_;
    delete world_;
    search_ = nullptr;
  }

  // Most popular multi-term entity: guaranteed web presence and queries.
  static const Entity& PopularEntity() {
    const Entity* best = nullptr;
    for (const Entity& e : world_->entities()) {
      if (e.is_generic || e.TermCount() < 2) continue;
      if (best == nullptr || e.popularity > best->popularity) best = &e;
    }
    return *best;
  }

  static World* world_;
  static std::vector<Document>* docs_;
  static TermDictionary* dict_;
  static InvertedIndex* index_;
  static QueryLog* log_;
  static SearchService* search_;
};

World* SearchTest::world_ = nullptr;
std::vector<Document>* SearchTest::docs_ = nullptr;
TermDictionary* SearchTest::dict_ = nullptr;
InvertedIndex* SearchTest::index_ = nullptr;
QueryLog* SearchTest::log_ = nullptr;
SearchService* SearchTest::search_ = nullptr;

TEST(ChooseEvaluatorTest, CrossoverPolicyIsPinned) {
  // Regression pin of the evaluator auto-selection: MaxScore exactly at
  // the crossover and above, and only when a block index exists.
  EXPECT_EQ(ChooseEvaluator(kEvaluatorCrossoverDocs - 1, true),
            QueryEvaluator::kExhaustive);
  EXPECT_EQ(ChooseEvaluator(kEvaluatorCrossoverDocs, true),
            QueryEvaluator::kMaxScore);
  EXPECT_EQ(ChooseEvaluator(10 * kEvaluatorCrossoverDocs, true),
            QueryEvaluator::kMaxScore);
  // No block index -> nothing to prune with, regardless of size.
  EXPECT_EQ(ChooseEvaluator(10 * kEvaluatorCrossoverDocs, false),
            QueryEvaluator::kExhaustive);
  EXPECT_EQ(ChooseEvaluator(0, true), QueryEvaluator::kExhaustive);
}

TEST_F(SearchTest, EvaluatorAutoSelectedFromCorpusSizeAndOverridable) {
  // Paper-scale corpus (400 docs, below the crossover): exhaustive.
  EXPECT_EQ(search_->evaluator(), QueryEvaluator::kExhaustive);
  SearchService overridden(*index_, *log_, *dict_);
  overridden.set_evaluator(QueryEvaluator::kMaxScore);
  EXPECT_EQ(overridden.evaluator(), QueryEvaluator::kMaxScore);
}

TEST_F(SearchTest, SnippetsMentionTheConcept) {
  const Entity& e = PopularEntity();
  auto snippets = search_->Snippets(e.key, 50);
  ASSERT_FALSE(snippets.empty());
  size_t mentioning = 0;
  for (const std::string& s : snippets) {
    if (s.find(e.surface) != std::string::npos) ++mentioning;
  }
  // Phrase-query snippets are centered on the occurrence.
  EXPECT_GT(mentioning, snippets.size() / 2);
}

TEST_F(SearchTest, SnippetCountBoundedByPhraseHits) {
  const Entity& e = PopularEntity();
  uint64_t hits = search_->PhraseResultCount(e.key);
  auto snippets = search_->Snippets(e.key, 100);
  EXPECT_LE(snippets.size(), std::min<uint64_t>(hits, 100));
}

TEST_F(SearchTest, ResultCountsOrdering) {
  const Entity& e = PopularEntity();
  // Disjunctive retrieval can only widen the result set.
  EXPECT_GE(search_->RegularResultCount(e.key),
            search_->PhraseResultCount(e.key));
  EXPECT_EQ(search_->PhraseResultCount("zzz unknown phrase"), 0u);
}

TEST_F(SearchTest, PrismaReturnsAtMostTwenty) {
  const Entity& e = PopularEntity();
  auto terms = search_->PrismaFeedbackTerms(e.key);
  EXPECT_LE(terms.size(), 20u);
  EXPECT_FALSE(terms.empty());
  // Feedback terms never echo the concept's own terms.
  for (const std::string& t : terms) {
    EXPECT_EQ(e.key.find(" " + t + " "), std::string::npos);
  }
}

TEST_F(SearchTest, SuggestionsShareTermsAndCarryFreqs) {
  const Entity& e = PopularEntity();
  auto suggestions = search_->RelatedSuggestions(e.key, 300);
  ASSERT_FALSE(suggestions.empty());
  EXPECT_LE(suggestions.size(), 300u);
  // Sorted by descending frequency.
  for (size_t i = 1; i < suggestions.size(); ++i) {
    EXPECT_GE(suggestions[i - 1].freq, suggestions[i].freq);
  }
  // None equals the concept itself.
  for (const auto& s : suggestions) EXPECT_NE(s.query, e.key);
}

TEST_F(SearchTest, SuggestionsEmptyForUnknownConcept) {
  EXPECT_TRUE(search_->RelatedSuggestions("zzz yyy xxx").empty());
}

TEST(WikiTest, CoverageAndLengthCorrelateWithNotability) {
  WorldConfig cfg;
  cfg.num_topics = 6;
  cfg.background_vocab = 600;
  cfg.words_per_topic = 40;
  cfg.num_named_entities = 400;
  cfg.num_concepts = 100;
  cfg.num_generic_concepts = 20;
  auto world_or = World::Create(cfg);
  ASSERT_TRUE(world_or.ok());
  const World& world = **world_or;
  WikiStore wiki = WikiStore::Build(world, 77);
  EXPECT_GT(wiki.NumArticles(), 100u);

  double hi_sum = 0, lo_sum = 0;
  size_t hi_n = 0, lo_n = 0;
  for (const Entity& e : world.entities()) {
    if (e.is_generic) {
      // Junk units never have articles.
      EXPECT_EQ(wiki.ArticleWordCount(e.key), 0u) << e.key;
      continue;
    }
    uint32_t words = wiki.ArticleWordCount(e.key);
    if (e.notability > 0.6) {
      hi_sum += words;
      ++hi_n;
    } else if (e.notability < 0.2) {
      lo_sum += words;
      ++lo_n;
    }
  }
  ASSERT_GT(hi_n, 5u);
  ASSERT_GT(lo_n, 5u);
  EXPECT_GT(hi_sum / static_cast<double>(hi_n),
            2.0 * (lo_sum / static_cast<double>(lo_n) + 1.0));
}

TEST(WikiTest, DeterministicInSeed) {
  WorldConfig cfg;
  cfg.num_topics = 4;
  cfg.background_vocab = 400;
  cfg.words_per_topic = 30;
  cfg.num_named_entities = 100;
  cfg.num_concepts = 50;
  cfg.num_generic_concepts = 5;
  auto world = World::Create(cfg);
  ASSERT_TRUE(world.ok());
  WikiStore a = WikiStore::Build(**world, 5);
  WikiStore b = WikiStore::Build(**world, 5);
  WikiStore c = WikiStore::Build(**world, 6);
  EXPECT_EQ(a.NumArticles(), b.NumArticles());
  size_t diff = 0;
  for (const Entity& e : (*world)->entities()) {
    EXPECT_EQ(a.ArticleWordCount(e.key), b.ArticleWordCount(e.key));
    if (a.ArticleWordCount(e.key) != c.ArticleWordCount(e.key)) ++diff;
  }
  EXPECT_GT(diff, 0u);
}

TEST(WikiTest, ArticleTextMatchesRegisteredLength) {
  WorldConfig cfg;
  cfg.num_topics = 4;
  cfg.background_vocab = 400;
  cfg.words_per_topic = 30;
  cfg.num_named_entities = 60;
  cfg.num_concepts = 30;
  cfg.num_generic_concepts = 5;
  auto world = World::Create(cfg);
  ASSERT_TRUE(world.ok());
  WikiStore wiki = WikiStore::Build(**world, 9);
  for (const Entity& e : (*world)->entities()) {
    uint32_t words = wiki.ArticleWordCount(e.key);
    if (words == 0) {
      EXPECT_EQ(wiki.ArticleText(**world, e.key), "");
      continue;
    }
    std::string text = wiki.ArticleText(**world, e.key);
    ASSERT_FALSE(text.empty());
    // Starts with the subject, like an encyclopedia lead.
    EXPECT_EQ(text.find(e.surface), 0u);
    return;  // One full-text check is enough (generation is costly).
  }
}

}  // namespace
}  // namespace ckr
