// Tests for the ckr_obs observability layer: metric semantics (histogram
// bucket boundaries above all), deterministic sorted-key snapshots, and
// FakeClock-driven stage timers. Every duration here flows through a
// FakeClock, so the expected snapshots are exact strings, not ranges.
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/clock.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace ckr {
namespace obs {
namespace {

TEST(ObsCounterTest, IncrementAddResetValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(ObsGaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.Value(), -1.25);
  g.Reset();
  EXPECT_EQ(g.Value(), 0.0);
}

TEST(ObsHistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0});
  ASSERT_EQ(h.NumBuckets(), 3u);  // two bounds + overflow

  h.Record(0.5);   // <= 1.0     -> bucket 0
  h.Record(1.0);   // == bound   -> bucket 0 (v <= bounds[i])
  h.Record(1.5);   // <= 2.0     -> bucket 1
  h.Record(2.0);   // == bound   -> bucket 1
  h.Record(3.0);   // above last -> overflow bucket

  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 8.0);
}

TEST(ObsHistogramTest, ResetZeroesCountsButKeepsBounds) {
  Histogram h({1.0});
  h.Record(0.5);
  h.Record(5.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.BucketCount(0), 0u);
  EXPECT_EQ(h.BucketCount(1), 0u);
  ASSERT_EQ(h.bounds().size(), 1u);
  EXPECT_EQ(h.bounds()[0], 1.0);
}

TEST(ObsHistogramTest, PercentileInterpolatesWithinTheCoveringBucket) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.Percentile(0.5), 0.0);  // Empty histogram.
  for (int i = 0; i < 10; ++i) h.Record(1.5);  // All in bucket (1, 2].
  // Rank q*10 sits at fraction q inside the covering bucket [1, 2].
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.1), 1.1);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 2.0);
  // Out-of-range q values clamp.
  EXPECT_DOUBLE_EQ(h.Percentile(-0.5), h.Percentile(0.0));
  EXPECT_DOUBLE_EQ(h.Percentile(2.0), 2.0);
}

TEST(ObsHistogramTest, PercentileTailsOfASkewedDistribution) {
  // The serving-latency shape: 90 fast, 9 slow, 1 very slow.
  Histogram h({0.001, 0.01, 0.1, 1.0});
  for (int i = 0; i < 90; ++i) h.Record(0.0005);
  for (int i = 0; i < 9; ++i) h.Record(0.005);
  h.Record(0.05);
  // p50: rank 50 of 90 in [0, 0.001].
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 50.0 / 90.0 * 0.001);
  // p99: rank 99 is exactly the last of the 9 in (0.001, 0.01].
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 0.01);
  // p999: rank 99.9 interpolates 90% into (0.01, 0.1]. NEAR, not
  // DOUBLE_EQ: 0.999 * 100 rounds a few ulps above 99.9.
  EXPECT_NEAR(h.Percentile(0.999), 0.01 + 0.9 * 0.09, 1e-12);
}

TEST(ObsHistogramTest, PercentileInOverflowReportsLastFiniteBound) {
  Histogram h({1.0, 2.0});
  h.Record(0.5);
  h.Record(50.0);  // Overflow bucket.
  // Any rank landing in overflow cannot be resolved beyond the last
  // finite bound.
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 2.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.9), 2.0);
}

TEST(ObsHistogramTest, PercentileOfEmptyHistogramIsZeroForEveryQuantile) {
  // The pinned zero-sample contract: no NaN, no sentinel, no division by
  // the zero total — 0.0 across the whole q range, bounds or not.
  Histogram with_bounds({1.0, 2.0, 4.0});
  Histogram no_bounds((std::vector<double>()));
  for (double q : {0.0, 0.5, 0.999, 1.0}) {
    EXPECT_EQ(with_bounds.Percentile(q), 0.0) << q;
    EXPECT_EQ(no_bounds.Percentile(q), 0.0) << q;
  }
}

TEST(ObsHistogramTest, PercentileWithSingleSampleCoversAllQuantiles) {
  // One sample in (1, 2]: every q > 0 has target rank in (0, 1], so the
  // single covering bucket answers all of them by interpolation; q = 0
  // degenerates to the bucket's lower bound.
  Histogram h({1.0, 2.0, 4.0});
  h.Record(1.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 2.0);
}

TEST(ObsHistogramTest, PercentileWithAllSamplesInOverflowPinsLastBound) {
  // Every sample above the last finite bound: the histogram cannot
  // resolve any quantile beyond that bound, so all of them report it.
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 5; ++i) h.Record(100.0);
  for (double q : {0.01, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 2.0) << q;
  }
}

TEST(ObsHistogramTest, PercentileIsDeterministicOnQuiescentData) {
  Histogram a(DefaultLatencyBoundsSeconds());
  Histogram b(DefaultLatencyBoundsSeconds());
  for (int i = 0; i < 1000; ++i) {
    const double v = 1e-6 * static_cast<double>((i * 37) % 997);
    a.Record(v);
    b.Record(v);
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.Percentile(q), b.Percentile(q)) << q;  // Bit-identical.
  }
}

TEST(ObsHistogramTest, DefaultLatencyBoundsAreDecades) {
  const std::vector<double>& b = DefaultLatencyBoundsSeconds();
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(b.front(), 1e-6);
  EXPECT_EQ(b.back(), 10.0);
  for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(ObsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricRegistry reg;
  Counter* c1 = reg.GetCounter("reqs");
  Counter* c2 = reg.GetCounter("reqs");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = reg.GetGauge("depth");
  EXPECT_EQ(g1, reg.GetGauge("depth"));
  Histogram* h1 = reg.GetHistogram("lat");
  EXPECT_EQ(h1, reg.GetHistogram("lat"));
}

TEST(ObsRegistryTest, CrossKindNameCollisionNeverAborts) {
  MetricRegistry reg;
  reg.GetCounter("x");
  // Same name as a different kind: served under a "!kind" suffix so the
  // caller still gets a live metric and serving never aborts.
  Gauge* g = reg.GetGauge("x");
  ASSERT_NE(g, nullptr);
  g->Set(7.0);
  std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("\"x!gauge\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"x\": 0"), std::string::npos);
}

TEST(ObsRegistryTest, SnapshotKeysAreSorted) {
  MetricRegistry reg;
  // Created out of order; the snapshot must render bytewise-sorted.
  reg.GetCounter("zebra")->Add(1);
  reg.GetCounter("alpha")->Add(2);
  reg.GetCounter("mango")->Add(3);
  std::string json = reg.SnapshotJson();
  size_t a = json.find("\"alpha\"");
  size_t m = json.find("\"mango\"");
  size_t z = json.find("\"zebra\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

TEST(ObsRegistryTest, EmptySnapshotIsStable) {
  MetricRegistry reg;
  const std::string expected =
      "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n";
  EXPECT_EQ(reg.SnapshotJson(), expected);
}

TEST(ObsRegistryTest, SnapshotIsByteStableAcrossCalls) {
  MetricRegistry reg;
  reg.GetCounter("docs")->Add(12);
  reg.GetGauge("workers")->Set(4.0);
  reg.GetHistogram("stage", {0.5, 1.0})->Record(0.25);
  std::string first = reg.SnapshotJson();
  std::string second = reg.SnapshotJson();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"docs\": 12"), std::string::npos);
  EXPECT_NE(first.find("\"workers\": 4"), std::string::npos);
  EXPECT_NE(first.find("\"le\": \"+Inf\""), std::string::npos);
}

TEST(ObsRegistryTest, ResetAllForTestingZeroesEverything) {
  MetricRegistry reg;
  reg.GetCounter("c")->Add(5);
  reg.GetGauge("g")->Set(5.0);
  reg.GetHistogram("h")->Record(0.5);
  reg.ResetAllForTesting();
  EXPECT_EQ(reg.GetCounter("c")->Value(), 0u);
  EXPECT_EQ(reg.GetGauge("g")->Value(), 0.0);
  EXPECT_EQ(reg.GetHistogram("h")->Count(), 0u);
}

TEST(ObsRegistryTest, ConcurrentUpdatesAreLossless) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("hits");
  Histogram* h = reg.GetHistogram("lat", {1.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(0.5);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->Count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->BucketCount(0), uint64_t{kThreads} * kPerThread);
}

TEST(ObsClockTest, FakeClockAdvancesExactly) {
  FakeClock clock(1000);
  EXPECT_EQ(clock.NowNanos(), 1000);
  clock.AdvanceNanos(500);
  EXPECT_EQ(clock.NowNanos(), 1500);
  clock.AdvanceSeconds(2.0);
  EXPECT_EQ(clock.NowNanos(), 1500 + 2000000000);
  EXPECT_DOUBLE_EQ(clock.SecondsSince(1500), 2.0);
  clock.SetNanos(0);
  EXPECT_EQ(clock.NowNanos(), 0);
}

TEST(ObsClockTest, RealClockIsMonotonic) {
  const Clock& clock = RealClock();
  int64_t a = clock.NowNanos();
  int64_t b = clock.NowNanos();
  EXPECT_LE(a, b);
}

TEST(ObsStageTimerTest, RecordsExactFakeClockAdvance) {
  FakeClock clock;
  Histogram h({1e-3, 1.0});
  {
    StageTimer timer(&h, &clock);
    clock.AdvanceSeconds(0.5);
  }
  ASSERT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5);
  EXPECT_EQ(h.BucketCount(1), 1u);  // 1e-3 < 0.5 <= 1.0
}

TEST(ObsStageTimerTest, StopRecordsOnceAndReturnsElapsed) {
  FakeClock clock;
  Histogram h({1.0});
  StageTimer timer(&h, &clock);
  clock.AdvanceSeconds(0.25);
  EXPECT_DOUBLE_EQ(timer.Stop(), 0.25);
  clock.AdvanceSeconds(10.0);
  EXPECT_DOUBLE_EQ(timer.Stop(), 0.25);  // Second Stop is a no-op.
  EXPECT_EQ(h.Count(), 1u);              // Destructor must not re-record.
}

TEST(ObsStageTimerTest, RegistryTimerUsesInjectedClock) {
  MetricRegistry reg;
  FakeClock clock;
  reg.SetClockForTesting(&clock);
  {
    StageTimer timer(&reg, "stage.lat");
    clock.AdvanceSeconds(0.003);
  }
  Histogram* h = reg.GetHistogram("stage.lat");
  ASSERT_EQ(h->Count(), 1u);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.003);
}

TEST(ObsStageTimerTest, SnapshotWithFakeClockIsExact) {
  MetricRegistry reg;
  FakeClock clock;
  reg.SetClockForTesting(&clock);
  {
    StageTimer timer(&reg, "t");
    clock.AdvanceSeconds(0.01);
  }
  const std::string expected =
      "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {\n"
      "    \"t\": {\"count\": 1, \"sum\": 0.01, \"buckets\": "
      "[{\"le\": 9.9999999999999995e-07, \"count\": 0}, "
      "{\"le\": 1.0000000000000001e-05, \"count\": 0}, "
      "{\"le\": 0.0001, \"count\": 0}, "
      "{\"le\": 0.001, \"count\": 0}, "
      "{\"le\": 0.01, \"count\": 1}, "
      "{\"le\": 0.10000000000000001, \"count\": 0}, "
      "{\"le\": 1, \"count\": 0}, "
      "{\"le\": 10, \"count\": 0}, "
      "{\"le\": \"+Inf\", \"count\": 0}]}\n  }\n}\n";
  EXPECT_EQ(reg.SnapshotJson(), expected);
}

TEST(ObsHooksTest, MacrosReportIntoGlobalRegistry) {
  MetricRegistry& reg = MetricRegistry::Global();
  uint64_t before = reg.GetCounter("obs_test.hook_events")->Value();
  CKR_OBS_COUNTER_INC("obs_test.hook_events");
  CKR_OBS_COUNTER_ADD("obs_test.hook_events", 2);
  EXPECT_EQ(reg.GetCounter("obs_test.hook_events")->Value(), before + 3);

  CKR_OBS_GAUGE_SET("obs_test.hook_gauge", 12.5);
  EXPECT_EQ(reg.GetGauge("obs_test.hook_gauge")->Value(), 12.5);

  uint64_t hist_before = reg.GetHistogram("obs_test.hook_hist")->Count();
  CKR_OBS_HISTOGRAM_RECORD("obs_test.hook_hist", 0.5);
  EXPECT_EQ(reg.GetHistogram("obs_test.hook_hist")->Count(), hist_before + 1);
}

TEST(ObsHooksTest, ScopedTimerMacroRecords) {
  MetricRegistry& reg = MetricRegistry::Global();
  uint64_t before = reg.GetHistogram("obs_test.scoped")->Count();
  {
    CKR_OBS_SCOPED_TIMER("obs_test.scoped");
  }
  EXPECT_EQ(reg.GetHistogram("obs_test.scoped")->Count(), before + 1);
}

}  // namespace
}  // namespace obs
}  // namespace ckr
