// Unit tests for ckr_serve: the bounded request queue, the RCU snapshot
// registry (including the multi-threaded swap stress the tsan preset
// runs), the daemon's shed/deadline/serve paths on a fake clock, and the
// deterministic load generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "corpus/document.h"
#include "corpus/world.h"
#include "index/inverted_index.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/load_gen.h"
#include "serve/request_queue.h"
#include "serve/server.h"
#include "serve/sharded_index.h"
#include "serve/snapshot.h"

namespace ckr {
namespace {

// ---------- Test clocks ----------
//
// FakeClock is thread-compatible only; the daemon reads the clock from
// worker threads while tests advance it, so these tests use their own
// atomic clocks.

/// Fixed-point clock safe to read from daemon workers while the test
/// thread moves it.
class AtomicTestClock final : public Clock {
 public:
  explicit AtomicTestClock(int64_t start_nanos = 0) : now_(start_nanos) {}
  int64_t NowNanos() const override {
    return now_.load(std::memory_order_acquire);
  }
  void Set(int64_t nanos) { now_.store(nanos, std::memory_order_release); }

 private:
  std::atomic<int64_t> now_;
};

/// Advances by `step` nanoseconds per reading — lets a single-threaded
/// deadline scatter expire between shard legs.
class SteppingClock final : public Clock {
 public:
  explicit SteppingClock(int64_t step) : step_(step) {}
  int64_t NowNanos() const override {
    return now_.fetch_add(step_, std::memory_order_acq_rel) + step_;
  }

 private:
  const int64_t step_;
  mutable std::atomic<int64_t> now_{0};
};

Document MakeDoc(DocId id, std::string text) {
  Document d;
  d.id = id;
  d.text = std::move(text);
  return d;
}

/// A tiny two-shard index over a fixed corpus (external ids interleave
/// across shards so merge order differs from shard order).
ShardedIndex MakeTestShardedIndex() {
  auto shard0 = std::make_unique<InvertedIndex>();
  shard0->Add(MakeDoc(0, "quick brown fox jumps over the lazy dog"));
  shard0->Add(MakeDoc(2, "the lazy dog sleeps in the quick sun"));
  shard0->Finalize();
  auto shard1 = std::make_unique<InvertedIndex>();
  shard1->Add(MakeDoc(1, "quick brown foxes are quick and brown"));
  shard1->Add(MakeDoc(3, "an unrelated document about turtles"));
  shard1->Finalize();
  std::vector<std::unique_ptr<InvertedIndex>> shards;
  shards.push_back(std::move(shard0));
  shards.push_back(std::move(shard1));
  auto sharded = ShardedIndex::FromShards(std::move(shards));
  CKR_CHECK(sharded.ok());
  return std::move(sharded).value();
}

std::unique_ptr<ServingSnapshot> MakeTestSnapshot() {
  return std::make_unique<ServingSnapshot>(MakeTestShardedIndex());
}

// ---------- BoundedMpmcQueue ----------

TEST(RequestQueueTest, FifoPushPop) {
  BoundedMpmcQueue<int> q(4);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    ASSERT_TRUE(q.TryPush(&v));
  }
  EXPECT_EQ(q.Size(), 3u);
  int out = -1;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.Pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(q.Size(), 0u);
}

TEST(RequestQueueTest, ShedsAtCapacityAndLeavesItemIntact) {
  BoundedMpmcQueue<std::string> q(1);
  std::string first = "first";
  ASSERT_TRUE(q.TryPush(&first));
  std::string second = "second";
  EXPECT_FALSE(q.TryPush(&second));
  // The rejected item still owns its payload: the caller answers it.
  EXPECT_EQ(second, "second");
}

TEST(RequestQueueTest, ShutdownDrainsBacklogThenCloses) {
  BoundedMpmcQueue<int> q(4);
  int v1 = 1, v2 = 2;
  ASSERT_TRUE(q.TryPush(&v1));
  ASSERT_TRUE(q.TryPush(&v2));
  q.Shutdown();
  int rejected = 3;
  EXPECT_FALSE(q.TryPush(&rejected));  // Admission closed immediately.
  int out = 0;
  ASSERT_TRUE(q.Pop(&out));  // ... but the backlog still drains.
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.Pop(&out));  // Drained + shut down -> closed.
}

TEST(RequestQueueTest, ShutdownWakesBlockedConsumer) {
  BoundedMpmcQueue<int> q(4);
  std::thread consumer([&q] {
    int out = 0;
    EXPECT_FALSE(q.Pop(&out));
  });
  q.Shutdown();
  consumer.join();
}

// ---------- ShardRangeOf / MergeShardTopK ----------

TEST(ShardRangeTest, PartitionsCoverDisjointNearEqualRanges) {
  for (size_t num_shards : {1u, 2u, 3u, 4u, 8u}) {
    for (uint64_t num_docs : {0ull, 1ull, 7ull, 8ull, 1000003ull}) {
      uint64_t cursor = 0;
      uint64_t min_size = num_docs, max_size = 0;
      for (size_t s = 0; s < num_shards; ++s) {
        const ShardRange r = ShardRangeOf(s, num_shards, num_docs);
        EXPECT_EQ(r.begin, cursor);  // Contiguous, in order, disjoint.
        cursor = r.end;
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
      }
      EXPECT_EQ(cursor, num_docs);  // Covers everything.
      EXPECT_LE(max_size - min_size, 1u);  // Near-equal split.
    }
  }
}

TEST(MergeShardTopKTest, MergesByScoreThenExternalId) {
  std::vector<std::vector<SearchResult>> per_shard = {
      {{10, 3.0}, {12, 1.0}},
      {},  // Empty shard contributes nothing and breaks nothing.
      {{11, 3.0}, {5, 2.0}},
  };
  const auto merged = MergeShardTopK(per_shard, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].doc, 10u);  // Tie at 3.0 broken by ascending id.
  EXPECT_EQ(merged[1].doc, 11u);
  EXPECT_EQ(merged[2].doc, 5u);
}

TEST(MergeShardTopKTest, TruncatesBelowCrossShardTieWidth) {
  // Four docs tied across shards; k=2 must keep the two smallest ids.
  std::vector<std::vector<SearchResult>> per_shard = {
      {{7, 1.0}, {9, 1.0}},
      {{2, 1.0}, {8, 1.0}},
  };
  const auto merged = MergeShardTopK(per_shard, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].doc, 2u);
  EXPECT_EQ(merged[1].doc, 7u);
}

// ---------- Deadline-bounded scatter ----------

TEST(ShardedIndexTest, TimedOutShardIsFlaggedNotDropped) {
  const ShardedIndex sharded = MakeTestShardedIndex();
  // 10ns per clock reading; the deadline admits the first shard's leg
  // (reading 10 <= 15) and rejects the second (reading 20 > 15).
  SteppingClock clock(10);
  const auto partial = sharded.SearchWithDeadline(
      "quick", 10, QueryEvaluator::kExhaustive, clock, /*deadline_nanos=*/15);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.shards_answered, 1u);
  // Shard 0's hits survive: partial results are served, not discarded.
  ASSERT_FALSE(partial.results.empty());
  for (const auto& r : partial.results) EXPECT_TRUE(r.doc == 0 || r.doc == 2);
}

TEST(ShardedIndexTest, ZeroDeadlineMeansNone) {
  const ShardedIndex sharded = MakeTestShardedIndex();
  SteppingClock clock(1000000);
  const auto full = sharded.SearchWithDeadline(
      "quick", 10, QueryEvaluator::kExhaustive, clock, /*deadline_nanos=*/0);
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.shards_answered, sharded.NumShards());
  EXPECT_EQ(full.results.size(), sharded.Search("quick", 10).size());
}

// ---------- SnapshotRegistry ----------

TEST(SnapshotRegistryTest, EmptyRegistryHandsOutNullHandles) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.CurrentGeneration(), 0u);
  EXPECT_EQ(registry.LiveGenerations(), 0);
  SnapshotHandle handle = registry.Acquire();
  EXPECT_FALSE(handle);
  EXPECT_EQ(handle.get(), nullptr);
}

TEST(SnapshotRegistryTest, PublishStampsGenerationsAndRetires) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.Publish(MakeTestSnapshot()), 1u);
  EXPECT_EQ(registry.CurrentGeneration(), 1u);
  EXPECT_EQ(registry.LiveGenerations(), 1);
  {
    SnapshotHandle pinned = registry.Acquire();
    ASSERT_TRUE(pinned);
    EXPECT_EQ(pinned->generation, 1u);
    EXPECT_EQ(registry.Publish(MakeTestSnapshot()), 2u);
    // The retired generation stays alive while the handle pins it.
    EXPECT_EQ(registry.LiveGenerations(), 2);
    EXPECT_EQ(pinned->generation, 1u);  // Handle still sees its own gen.
    EXPECT_EQ(registry.CurrentGeneration(), 2u);
  }
  // Last handle released -> the retired generation dies.
  EXPECT_EQ(registry.LiveGenerations(), 1);
}

TEST(SnapshotRegistryTest, HandleOutlivesRegistry) {
  SnapshotHandle survivor;
  {
    SnapshotRegistry registry;
    registry.Publish(MakeTestSnapshot());
    survivor = registry.Acquire();
  }
  ASSERT_TRUE(survivor);
  EXPECT_EQ(survivor->generation, 1u);
  EXPECT_FALSE(survivor->index.Search("quick", 4).empty());
  survivor.Reset();  // Last reference frees the node.
  EXPECT_FALSE(survivor);
}

TEST(SnapshotRegistryTest, SwapUnderConcurrentReaders) {
  // The tsan target: readers acquire/score/release while a publisher
  // swaps generations. Exactness of reclamation is asserted at the end.
  SnapshotRegistry registry;
  registry.Publish(MakeTestSnapshot());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        SnapshotHandle handle = registry.Acquire();
        ASSERT_TRUE(handle);
        ASSERT_GE(handle->generation, 1u);
        ASSERT_FALSE(handle->index.Search("quick brown", 4).empty());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int g = 0; g < 50; ++g) registry.Publish(MakeTestSnapshot());
  while (reads.load(std::memory_order_relaxed) < 200) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(registry.CurrentGeneration(), 51u);
  // Every retired generation was reclaimed once its readers drained.
  EXPECT_EQ(registry.LiveGenerations(), 1);
}

// ---------- ServeDaemon ----------

struct DaemonFixture {
  AtomicTestClock clock;
  obs::MetricRegistry metrics;
  ServeDaemon daemon;

  explicit DaemonFixture(ServeDaemonConfig base = {})
      : daemon([&]() {
          base.clock = &clock;
          base.metrics = &metrics;
          return base;
        }()) {}
};

ServeResponse SubmitAndWait(ServeDaemon& daemon, ServeRequest&& request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  request.done = [&promise](ServeResponse&& response) {
    promise.set_value(std::move(response));
  };
  (void)daemon.Submit(std::move(request));
  return future.get();
}

TEST(ServeDaemonTest, SubmitBeforeStartAnswersSynchronously) {
  DaemonFixture fix;
  ServeRequest request;
  request.id = 7;
  request.query = "quick";
  const ServeResponse response = SubmitAndWait(fix.daemon, std::move(request));
  EXPECT_EQ(response.outcome, ServeOutcome::kNotStarted);
  EXPECT_EQ(response.id, 7u);
}

TEST(ServeDaemonTest, NoSnapshotOutcomeBeforeFirstPublish) {
  DaemonFixture fix;
  ASSERT_TRUE(fix.daemon.Start().ok());
  ServeRequest request;
  request.query = "quick";
  const ServeResponse response = SubmitAndWait(fix.daemon, std::move(request));
  EXPECT_EQ(response.outcome, ServeOutcome::kNoSnapshot);
  EXPECT_EQ(fix.metrics.GetCounter("ckr.serve.no_snapshot")->Value(), 1u);
  fix.daemon.Stop();
}

TEST(ServeDaemonTest, ServesScatterGatherIdenticalToDirectSearch) {
  DaemonFixture fix;
  fix.daemon.Publish(MakeTestSnapshot());
  ASSERT_TRUE(fix.daemon.Start().ok());
  EXPECT_FALSE(fix.daemon.Start().ok());  // Double start refused.

  const ShardedIndex oracle = MakeTestShardedIndex();
  for (const char* query : {"quick brown", "lazy dog", "turtles", "absent"}) {
    ServeRequest request;
    request.query = query;
    request.k = 4;
    const ServeResponse response =
        SubmitAndWait(fix.daemon, std::move(request));
    EXPECT_EQ(response.outcome, ServeOutcome::kOk) << query;
    EXPECT_EQ(response.generation, 1u);
    EXPECT_EQ(response.shards_answered, 2u);
    const auto expected = oracle.Search(query, 4);
    ASSERT_EQ(response.results.size(), expected.size()) << query;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(response.results[i].doc, expected[i].doc) << query;
      EXPECT_EQ(response.results[i].score, expected[i].score) << query;
    }
  }
  fix.daemon.Stop();
  EXPECT_EQ(fix.metrics.GetCounter("ckr.serve.completed")->Value(), 4u);
  EXPECT_EQ(fix.metrics.GetCounter("ckr.serve.admitted")->Value(), 4u);
  EXPECT_EQ(fix.metrics.GetHistogram("ckr.serve.latency_seconds")->Count(),
            4u);
}

TEST(ServeDaemonTest, ExpiredDeadlineIsShedWithoutTouchingTheIndex) {
  DaemonFixture fix;
  fix.daemon.Publish(MakeTestSnapshot());
  fix.clock.Set(1000);
  ASSERT_TRUE(fix.daemon.Start().ok());
  ServeRequest request;
  request.query = "quick";
  request.deadline_nanos = 500;  // Already past at admission.
  const ServeResponse response = SubmitAndWait(fix.daemon, std::move(request));
  EXPECT_EQ(response.outcome, ServeOutcome::kShedDeadline);
  EXPECT_TRUE(response.results.empty());
  fix.daemon.Stop();
  EXPECT_EQ(fix.metrics.GetCounter("ckr.serve.shed_deadline")->Value(), 1u);
  EXPECT_EQ(fix.metrics.GetCounter("ckr.serve.completed")->Value(), 0u);
}

TEST(ServeDaemonTest, QueueFullShedsAtAdmission) {
  ServeDaemonConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  DaemonFixture fix(config);
  fix.daemon.Publish(MakeTestSnapshot());
  ASSERT_TRUE(fix.daemon.Start().ok());

  // Park the single worker inside a completion callback so the queue
  // cannot drain while we overfill it.
  std::promise<void> worker_parked;
  std::promise<void> release_worker;
  std::future<void> release = release_worker.get_future();
  ServeRequest blocker;
  blocker.query = "quick";
  blocker.done = [&](ServeResponse&&) {
    worker_parked.set_value();
    release.wait();
  };
  ASSERT_TRUE(fix.daemon.Submit(std::move(blocker)));
  worker_parked.get_future().wait();

  ServeRequest queued;  // Fills the single queue slot.
  queued.query = "quick";
  std::promise<void> queued_done;
  queued.done = [&](ServeResponse&&) { queued_done.set_value(); };
  ASSERT_TRUE(fix.daemon.Submit(std::move(queued)));

  ServeRequest shed;  // No room: shed synchronously, callback intact.
  shed.id = 99;
  shed.query = "quick";
  ServeResponse shed_response;
  shed.done = [&](ServeResponse&& r) { shed_response = std::move(r); };
  EXPECT_FALSE(fix.daemon.Submit(std::move(shed)));
  EXPECT_EQ(shed_response.outcome, ServeOutcome::kShedQueueFull);
  EXPECT_EQ(shed_response.id, 99u);
  EXPECT_EQ(fix.metrics.GetCounter("ckr.serve.shed_queue_full")->Value(), 1u);

  release_worker.set_value();
  queued_done.get_future().wait();  // Graceful drain of the queued one.
  fix.daemon.Stop();
  EXPECT_EQ(fix.metrics.GetCounter("ckr.serve.completed")->Value(), 2u);
}

TEST(ServeDaemonTest, HotSwapChangesGenerationMidStream) {
  DaemonFixture fix;
  fix.daemon.Publish(MakeTestSnapshot());
  ASSERT_TRUE(fix.daemon.Start().ok());
  ServeRequest before;
  before.query = "quick";
  EXPECT_EQ(SubmitAndWait(fix.daemon, std::move(before)).generation, 1u);
  EXPECT_EQ(fix.daemon.Publish(MakeTestSnapshot()), 2u);
  ServeRequest after;
  after.query = "quick";
  EXPECT_EQ(SubmitAndWait(fix.daemon, std::move(after)).generation, 2u);
  fix.daemon.Stop();
  EXPECT_EQ(fix.daemon.LiveGenerations(), 1);
  EXPECT_EQ(fix.metrics.GetCounter("ckr.serve.snapshot_swaps")->Value(), 1u);
}

TEST(ServeDaemonTest, StopDrainsEveryAdmittedRequest) {
  ServeDaemonConfig config;
  config.num_workers = 2;
  DaemonFixture fix(config);
  fix.daemon.Publish(MakeTestSnapshot());
  ASSERT_TRUE(fix.daemon.Start().ok());
  std::atomic<int> answered{0};
  int admitted = 0;
  for (int i = 0; i < 64; ++i) {
    ServeRequest request;
    request.query = "quick brown";
    request.done = [&](ServeResponse&& r) {
      EXPECT_EQ(r.outcome, ServeOutcome::kOk);
      answered.fetch_add(1, std::memory_order_relaxed);
    };
    if (fix.daemon.Submit(std::move(request))) ++admitted;
  }
  fix.daemon.Stop();  // Graceful: every admitted request is answered.
  EXPECT_EQ(answered.load(), admitted);
  EXPECT_EQ(admitted, 64);
}

// ---------- LoadGenerator ----------

TEST(LoadGenTest, ConfigValidation) {
  LoadGenConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_users = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.hot_entity_prob = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.hot_entity_prob = 0.5;
  config.hot_set_size = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.burst_period = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.top_k = 0;
  EXPECT_FALSE(config.Validate().ok());
}

class LoadGenWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldConfig cfg;
    cfg.num_topics = 4;
    cfg.background_vocab = 400;
    cfg.words_per_topic = 30;
    cfg.num_named_entities = 80;
    cfg.num_concepts = 50;
    cfg.num_generic_concepts = 8;
    cfg.num_web_docs = 50;
    world_ = World::Create(cfg)->release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* LoadGenWorldTest::world_ = nullptr;

TEST_F(LoadGenWorldTest, RequestIsAPureFunctionOfSeedAndIndex) {
  LoadGenConfig config;
  config.num_users = 1000;
  const LoadGenerator a(*world_, config);
  const LoadGenerator b(*world_, config);
  for (uint64_t i = 0; i < 200; ++i) {
    // Draw out of order on one instance: index fully determines the draw.
    const LoadRequest ra = a.Request(199 - i);
    const LoadRequest rb = b.Request(199 - i);
    EXPECT_EQ(ra.index, 199 - i);
    EXPECT_EQ(ra.user, rb.user);
    EXPECT_EQ(ra.entity, rb.entity);
    EXPECT_EQ(ra.query, rb.query);
    EXPECT_EQ(ra.hot, rb.hot);
    EXPECT_EQ(ra.query, world_->entity(ra.entity).key);
    EXPECT_LT(ra.user, config.num_users);
  }
}

TEST_F(LoadGenWorldTest, DifferentSeedsDiverge) {
  LoadGenConfig config_a;
  config_a.num_users = 1000;
  LoadGenConfig config_b = config_a;
  config_b.seed = config_a.seed + 1;
  const LoadGenerator a(*world_, config_a);
  const LoadGenerator b(*world_, config_b);
  size_t differing = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    if (a.Request(i).entity != b.Request(i).entity) ++differing;
  }
  EXPECT_GT(differing, 20u);
}

TEST_F(LoadGenWorldTest, HotSetRotatesPerEpochAndIsSharedWithinIt) {
  LoadGenConfig config;
  config.num_users = 1000;
  config.hot_entity_prob = 1.0;  // Every request hits the hot set.
  config.hot_set_size = 4;
  config.burst_period = 64;
  const LoadGenerator gen(*world_, config);
  // Within one epoch, every hot draw lands on one of the 4 members.
  std::set<EntityId> members;
  for (size_t m = 0; m < config.hot_set_size; ++m) {
    members.insert(gen.HotEntity(0, m));
  }
  for (uint64_t i = 0; i < 64; ++i) {
    const LoadRequest r = gen.Request(i);
    EXPECT_TRUE(r.hot);
    EXPECT_TRUE(members.count(r.entity) > 0) << "request " << i;
  }
  // Across many epochs the hot set must actually rotate.
  std::set<EntityId> all_members;
  for (uint64_t epoch = 0; epoch < 16; ++epoch) {
    for (size_t m = 0; m < config.hot_set_size; ++m) {
      all_members.insert(gen.HotEntity(epoch, m));
    }
  }
  EXPECT_GT(all_members.size(), config.hot_set_size);
}

TEST_F(LoadGenWorldTest, HotFractionTracksConfiguredProbability) {
  LoadGenConfig config;
  config.num_users = 1000;
  config.hot_entity_prob = 0.25;
  const LoadGenerator gen(*world_, config);
  size_t hot = 0;
  const uint64_t n = 4000;
  for (uint64_t i = 0; i < n; ++i) {
    if (gen.Request(i).hot) ++hot;
  }
  const double fraction = static_cast<double>(hot) / static_cast<double>(n);
  EXPECT_GT(fraction, 0.20);
  EXPECT_LT(fraction, 0.30);
}

TEST_F(LoadGenWorldTest, ArrivalScheduleIsMonotoneDeterministicAndOnRate) {
  LoadGenConfig config;
  config.num_users = 1000;
  const LoadGenerator gen(*world_, config);
  const auto arrivals = gen.ArrivalNanos(5000, /*offered_qps=*/1000.0);
  ASSERT_EQ(arrivals.size(), 5000u);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i], arrivals[i - 1]);
  }
  EXPECT_EQ(arrivals, gen.ArrivalNanos(5000, 1000.0));  // Replays exactly.
  // 5000 arrivals at 1000 qps should span ~5 seconds.
  const double span_seconds = static_cast<double>(arrivals.back()) / 1e9;
  EXPECT_GT(span_seconds, 4.0);
  EXPECT_LT(span_seconds, 6.0);
}

}  // namespace
}  // namespace ckr
