// Unit tests for ckr_ranksvm: pairwise training, kernels, serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ranksvm/rank_svm.h"

namespace ckr {
namespace {

// Synthetic ranking problem: label = w . x (+ optional noise), grouped.
std::vector<RankingInstance> LinearProblem(size_t n, size_t dim,
                                           size_t group_size, double noise,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w(dim);
  for (double& x : w) x = rng.NextGaussian();
  std::vector<RankingInstance> data;
  for (size_t i = 0; i < n; ++i) {
    RankingInstance inst;
    inst.features.resize(dim);
    double score = 0;
    for (size_t d = 0; d < dim; ++d) {
      inst.features[d] = rng.NextGaussian();
      score += w[d] * inst.features[d];
    }
    inst.label = score + noise * rng.NextGaussian();
    inst.group = static_cast<uint32_t>(i / group_size);
    data.push_back(std::move(inst));
  }
  return data;
}

// Fraction of correctly ordered within-group pairs.
double PairAccuracy(const RankSvmModel& model,
                    const std::vector<RankingInstance>& data) {
  size_t correct = 0, total = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = i + 1; j < data.size(); ++j) {
      if (data[i].group != data[j].group) continue;
      if (data[i].label == data[j].label) continue;
      ++total;
      double si = model.Score(data[i].features);
      double sj = model.Score(data[j].features);
      if ((si > sj) == (data[i].label > data[j].label)) ++correct;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / total;
}

TEST(RankSvmTest, RejectsDegenerateInput) {
  RankSvmTrainer trainer;
  EXPECT_FALSE(trainer.Train({}).ok());

  std::vector<RankingInstance> empty_features(3);
  for (auto& inst : empty_features) inst.group = 0;
  EXPECT_FALSE(trainer.Train(empty_features).ok());

  std::vector<RankingInstance> mismatched = {
      {{1.0, 2.0}, 0.5, 0}, {{1.0}, 0.2, 0}};
  EXPECT_FALSE(trainer.Train(mismatched).ok());

  // All labels tied: no preference pairs.
  std::vector<RankingInstance> tied = {
      {{1.0}, 0.5, 0}, {{2.0}, 0.5, 0}, {{3.0}, 0.5, 0}};
  auto result = trainer.Train(tied);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RankSvmTest, LearnsLinearOrdering) {
  auto data = LinearProblem(400, 6, 8, 0.0, 42);
  RankSvmTrainer trainer;
  auto model = trainer.Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(PairAccuracy(*model, data), 0.95);
}

TEST(RankSvmTest, GeneralizesToHeldOut) {
  auto train = LinearProblem(400, 6, 8, 0.1, 7);
  auto test = LinearProblem(200, 6, 8, 0.1, 7);  // Same w (same seed).
  RankSvmTrainer trainer;
  auto model = trainer.Train(train);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(PairAccuracy(*model, test), 0.85);
}

TEST(RankSvmTest, PairsOnlyFormWithinGroups) {
  // Two groups with opposite label-feature relationships within a shared
  // global scale. If cross-group pairs were used the problem would be
  // unlearnable; within groups it is exactly learnable.
  std::vector<RankingInstance> data;
  for (int g = 0; g < 40; ++g) {
    double offset = (g % 2 == 0) ? 0.0 : 100.0;
    data.push_back({{1.0 + offset}, offset + 2.0, static_cast<uint32_t>(g)});
    data.push_back({{0.0 + offset}, offset + 1.0, static_cast<uint32_t>(g)});
  }
  RankSvmTrainer trainer;
  auto model = trainer.Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(PairAccuracy(*model, data), 0.99);
}

TEST(RankSvmTest, RbfSolvesNonlinearProblem) {
  // label depends on |x| — linearly unlearnable, easy for RBF features.
  Rng rng(3);
  std::vector<RankingInstance> data;
  for (size_t i = 0; i < 600; ++i) {
    double x = rng.NextGaussian();
    RankingInstance inst;
    inst.features = {x};
    inst.label = std::abs(x);
    inst.group = static_cast<uint32_t>(i / 6);
    data.push_back(std::move(inst));
  }
  RankSvmConfig linear_cfg;
  RankSvmConfig rbf_cfg;
  rbf_cfg.kernel = SvmKernel::kRbfFourier;
  rbf_cfg.rbf_gamma = 1.0;
  auto linear = RankSvmTrainer(linear_cfg).Train(data);
  auto rbf = RankSvmTrainer(rbf_cfg).Train(data);
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(rbf.ok());
  double lin_acc = PairAccuracy(*linear, data);
  double rbf_acc = PairAccuracy(*rbf, data);
  EXPECT_LT(lin_acc, 0.65);  // Linear is near chance.
  EXPECT_GT(rbf_acc, 0.8);
  EXPECT_GT(rbf_acc, lin_acc + 0.15);
}

TEST(RankSvmTest, DeterministicTraining) {
  auto data = LinearProblem(200, 4, 5, 0.2, 11);
  RankSvmTrainer trainer;
  auto a = trainer.Train(data);
  auto b = trainer.Train(data);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->weights().size(), b->weights().size());
  for (size_t i = 0; i < a->weights().size(); ++i) {
    EXPECT_DOUBLE_EQ(a->weights()[i], b->weights()[i]);
  }
}

TEST(RankSvmTest, ScoreDimensionMismatchIsZero) {
  auto data = LinearProblem(100, 4, 5, 0.0, 2);
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Score({1.0, 2.0}), 0.0);
  EXPECT_EQ(model->InputDim(), 4u);
}

TEST(RankSvmTest, ConstantFeatureDimensionIsIgnored) {
  // A constant dimension has sd 0; standardization must not divide by it.
  Rng rng(9);
  std::vector<RankingInstance> data;
  for (size_t i = 0; i < 200; ++i) {
    double x = rng.NextGaussian();
    data.push_back({{x, 5.0}, x, static_cast<uint32_t>(i / 5)});
  }
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(PairAccuracy(*model, data), 0.95);
}

TEST(RankSvmTest, SerializationRoundTripLinear) {
  auto data = LinearProblem(200, 5, 5, 0.1, 21);
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  std::string blob = model->Serialize();
  auto restored = RankSvmModel::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (const auto& inst : data) {
    EXPECT_NEAR(model->Score(inst.features), restored->Score(inst.features),
                1e-12);
  }
}

TEST(RankSvmTest, SerializationRoundTripRbf) {
  RankSvmConfig cfg;
  cfg.kernel = SvmKernel::kRbfFourier;
  cfg.rff_dim = 64;
  auto data = LinearProblem(200, 3, 5, 0.1, 23);
  auto model = RankSvmTrainer(cfg).Train(data);
  ASSERT_TRUE(model.ok());
  auto restored = RankSvmModel::Deserialize(model->Serialize());
  ASSERT_TRUE(restored.ok());
  for (const auto& inst : data) {
    EXPECT_NEAR(model->Score(inst.features), restored->Score(inst.features),
                1e-9);
  }
}

TEST(RankSvmTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(RankSvmModel::Deserialize("not a model").ok());
  EXPECT_FALSE(RankSvmModel::Deserialize("").ok());
  EXPECT_FALSE(RankSvmModel::Deserialize("ranksvm v1\nkernel linear\n").ok());
}

}  // namespace
}  // namespace ckr
