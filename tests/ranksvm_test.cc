// Unit tests for ckr_ranksvm: pairwise training, kernels, serialization,
// and bit-equivalence of the flat trainer against the legacy scalar one.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "ranksvm/legacy_rank_svm.h"
#include "ranksvm/rank_svm.h"

namespace ckr {
namespace {

// Synthetic ranking problem: label = w . x (+ optional noise), grouped.
std::vector<RankingInstance> LinearProblem(size_t n, size_t dim,
                                           size_t group_size, double noise,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w(dim);
  for (double& x : w) x = rng.NextGaussian();
  std::vector<RankingInstance> data;
  for (size_t i = 0; i < n; ++i) {
    RankingInstance inst;
    inst.features.resize(dim);
    double score = 0;
    for (size_t d = 0; d < dim; ++d) {
      inst.features[d] = rng.NextGaussian();
      score += w[d] * inst.features[d];
    }
    inst.label = score + noise * rng.NextGaussian();
    inst.group = static_cast<uint32_t>(i / group_size);
    data.push_back(std::move(inst));
  }
  return data;
}

// Fraction of correctly ordered within-group pairs.
double PairAccuracy(const RankSvmModel& model,
                    const std::vector<RankingInstance>& data) {
  size_t correct = 0, total = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = i + 1; j < data.size(); ++j) {
      if (data[i].group != data[j].group) continue;
      if (data[i].label == data[j].label) continue;
      ++total;
      double si = model.Score(data[i].features);
      double sj = model.Score(data[j].features);
      if ((si > sj) == (data[i].label > data[j].label)) ++correct;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

TEST(RankSvmTest, RejectsDegenerateInput) {
  RankSvmTrainer trainer;
  EXPECT_FALSE(trainer.Train({}).ok());

  std::vector<RankingInstance> empty_features(3);
  for (auto& inst : empty_features) inst.group = 0;
  EXPECT_FALSE(trainer.Train(empty_features).ok());

  std::vector<RankingInstance> mismatched = {
      {{1.0, 2.0}, 0.5, 0}, {{1.0}, 0.2, 0}};
  EXPECT_FALSE(trainer.Train(mismatched).ok());

  // All labels tied: no preference pairs.
  std::vector<RankingInstance> tied = {
      {{1.0}, 0.5, 0}, {{2.0}, 0.5, 0}, {{3.0}, 0.5, 0}};
  auto result = trainer.Train(tied);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RankSvmTest, LearnsLinearOrdering) {
  auto data = LinearProblem(400, 6, 8, 0.0, 42);
  RankSvmTrainer trainer;
  auto model = trainer.Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(PairAccuracy(*model, data), 0.95);
}

TEST(RankSvmTest, GeneralizesToHeldOut) {
  auto train = LinearProblem(400, 6, 8, 0.1, 7);
  auto test = LinearProblem(200, 6, 8, 0.1, 7);  // Same w (same seed).
  RankSvmTrainer trainer;
  auto model = trainer.Train(train);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(PairAccuracy(*model, test), 0.85);
}

TEST(RankSvmTest, PairsOnlyFormWithinGroups) {
  // Two groups with opposite label-feature relationships within a shared
  // global scale. If cross-group pairs were used the problem would be
  // unlearnable; within groups it is exactly learnable.
  std::vector<RankingInstance> data;
  for (int g = 0; g < 40; ++g) {
    double offset = (g % 2 == 0) ? 0.0 : 100.0;
    data.push_back({{1.0 + offset}, offset + 2.0, static_cast<uint32_t>(g)});
    data.push_back({{0.0 + offset}, offset + 1.0, static_cast<uint32_t>(g)});
  }
  RankSvmTrainer trainer;
  auto model = trainer.Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(PairAccuracy(*model, data), 0.99);
}

TEST(RankSvmTest, RbfSolvesNonlinearProblem) {
  // label depends on |x| — linearly unlearnable, easy for RBF features.
  Rng rng(3);
  std::vector<RankingInstance> data;
  for (size_t i = 0; i < 600; ++i) {
    double x = rng.NextGaussian();
    RankingInstance inst;
    inst.features = {x};
    inst.label = std::abs(x);
    inst.group = static_cast<uint32_t>(i / 6);
    data.push_back(std::move(inst));
  }
  RankSvmConfig linear_cfg;
  RankSvmConfig rbf_cfg;
  rbf_cfg.kernel = SvmKernel::kRbfFourier;
  rbf_cfg.rbf_gamma = 1.0;
  auto linear = RankSvmTrainer(linear_cfg).Train(data);
  auto rbf = RankSvmTrainer(rbf_cfg).Train(data);
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(rbf.ok());
  double lin_acc = PairAccuracy(*linear, data);
  double rbf_acc = PairAccuracy(*rbf, data);
  EXPECT_LT(lin_acc, 0.65);  // Linear is near chance.
  EXPECT_GT(rbf_acc, 0.8);
  EXPECT_GT(rbf_acc, lin_acc + 0.15);
}

TEST(RankSvmTest, DeterministicTraining) {
  auto data = LinearProblem(200, 4, 5, 0.2, 11);
  RankSvmTrainer trainer;
  auto a = trainer.Train(data);
  auto b = trainer.Train(data);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->weights().size(), b->weights().size());
  for (size_t i = 0; i < a->weights().size(); ++i) {
    EXPECT_DOUBLE_EQ(a->weights()[i], b->weights()[i]);
  }
}

// Captures every log line emitted while in scope.
class ScopedLogCapture {
 public:
  ScopedLogCapture() {
    previous_ = SetLogSink([this](LogLevel level, std::string_view msg) {
      levels_.push_back(level);
      messages_.emplace_back(msg);
    });
  }
  ~ScopedLogCapture() { SetLogSink(std::move(previous_)); }

  const std::vector<std::string>& messages() const { return messages_; }
  const std::vector<LogLevel>& levels() const { return levels_; }

 private:
  LogSink previous_;
  std::vector<LogLevel> levels_;
  std::vector<std::string> messages_;
};

TEST(RankSvmTest, ScoreDimensionMismatchIsZeroAndLogs) {
  auto data = LinearProblem(100, 4, 5, 0.0, 2);
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  ScopedLogCapture capture;
  EXPECT_EQ(model->Score({1.0, 2.0}), 0.0);
  EXPECT_EQ(model->InputDim(), 4u);
  ASSERT_EQ(capture.messages().size(), 1u);
  EXPECT_EQ(capture.levels()[0], LogLevel::kWarn);
  EXPECT_NE(capture.messages()[0].find("expecting"), std::string::npos)
      << capture.messages()[0];
  // A well-shaped vector logs nothing.
  EXPECT_NE(model->Score({1.0, 2.0, 3.0, 4.0}), 0.0);
  EXPECT_EQ(capture.messages().size(), 1u);
}

TEST(RankSvmTest, ScoreCheckedRejectsDimensionMismatch) {
  auto data = LinearProblem(100, 4, 5, 0.0, 2);
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  auto bad = model->ScoreChecked({1.0, 2.0});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  auto good = model->ScoreChecked({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(good.ok());
  EXPECT_DOUBLE_EQ(*good, model->Score({1.0, 2.0, 3.0, 4.0}));
}

TEST(RankSvmTest, ConstantFeatureDimensionIsIgnored) {
  // A constant dimension has sd 0; standardization must not divide by it.
  Rng rng(9);
  std::vector<RankingInstance> data;
  for (size_t i = 0; i < 200; ++i) {
    double x = rng.NextGaussian();
    data.push_back({{x, 5.0}, x, static_cast<uint32_t>(i / 5)});
  }
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(PairAccuracy(*model, data), 0.95);
}

TEST(RankSvmTest, SerializationRoundTripLinear) {
  auto data = LinearProblem(200, 5, 5, 0.1, 21);
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  std::string blob = model->Serialize();
  auto restored = RankSvmModel::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (const auto& inst : data) {
    EXPECT_NEAR(model->Score(inst.features), restored->Score(inst.features),
                1e-12);
  }
}

TEST(RankSvmTest, SerializationRoundTripRbf) {
  RankSvmConfig cfg;
  cfg.kernel = SvmKernel::kRbfFourier;
  cfg.rff_dim = 64;
  auto data = LinearProblem(200, 3, 5, 0.1, 23);
  auto model = RankSvmTrainer(cfg).Train(data);
  ASSERT_TRUE(model.ok());
  auto restored = RankSvmModel::Deserialize(model->Serialize());
  ASSERT_TRUE(restored.ok());
  for (const auto& inst : data) {
    EXPECT_NEAR(model->Score(inst.features), restored->Score(inst.features),
                1e-9);
  }
}

TEST(RankSvmTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(RankSvmModel::Deserialize("not a model").ok());
  EXPECT_FALSE(RankSvmModel::Deserialize("").ok());
  EXPECT_FALSE(RankSvmModel::Deserialize("ranksvm v1\nkernel linear\n").ok());
}

TEST(RankSvmTest, DeserializeRejectsUnknownKernel) {
  auto data = LinearProblem(100, 3, 5, 0.1, 17);
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  std::string blob = model->Serialize();
  const std::string from = "kernel linear";
  size_t pos = blob.find(from);
  ASSERT_NE(pos, std::string::npos);
  blob.replace(pos, from.size(), "kernel quadratic");
  auto restored = RankSvmModel::Deserialize(blob);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(restored.status().ToString().find("kernel"), std::string::npos);
}

TEST(RankSvmTest, DeserializeParsesHandWrittenV1Blob) {
  // A v1 blob written by an earlier version of the library must keep
  // loading byte for byte.
  const std::string blob =
      "ranksvm v1\n"
      "kernel linear\n"
      "mean 2 0 0\n"
      "inv_sd 2 1 1\n"
      "weights 2 1 2\n"
      "rff 0\n";
  auto model = RankSvmModel::Deserialize(blob);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->InputDim(), 2u);
  EXPECT_DOUBLE_EQ(model->Score({1.0, 2.0}), 5.0);
}

TEST(RankSvmTest, BinarySerializationRoundTripLinear) {
  auto data = LinearProblem(200, 5, 5, 0.1, 21);
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  std::string blob = model->SerializeBinary();
  auto restored = RankSvmModel::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (const auto& inst : data) {
    // Binary F64 fields round-trip exactly.
    EXPECT_DOUBLE_EQ(model->Score(inst.features),
                     restored->Score(inst.features));
  }
  EXPECT_EQ(restored->SerializeBinary(), blob);
}

TEST(RankSvmTest, BinarySerializationRoundTripRbfAndIsCompact) {
  RankSvmConfig cfg;
  cfg.kernel = SvmKernel::kRbfFourier;
  cfg.rff_dim = 64;
  auto data = LinearProblem(200, 3, 5, 0.1, 23);
  auto model = RankSvmTrainer(cfg).Train(data);
  ASSERT_TRUE(model.ok());
  std::string blob = model->SerializeBinary();
  auto restored = RankSvmModel::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (const auto& inst : data) {
    EXPECT_DOUBLE_EQ(model->Score(inst.features),
                     restored->Score(inst.features));
  }
  EXPECT_LT(blob.size(), model->Serialize().size() / 2);
}

TEST(RankSvmTest, BinaryDeserializeRejectsCorruption) {
  auto data = LinearProblem(100, 3, 5, 0.1, 29);
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  std::string blob = model->SerializeBinary();
  EXPECT_FALSE(RankSvmModel::Deserialize(blob.substr(0, blob.size() - 4))
                   .ok());  // Truncated.
  EXPECT_FALSE(RankSvmModel::Deserialize(blob + "xx").ok());  // Trailing.
  std::string bad_kernel = blob;
  bad_kernel[4 + 14] = 9;  // Kernel id u16 right after the magic string.
  EXPECT_FALSE(RankSvmModel::Deserialize(bad_kernel).ok());
}

TEST(RankSvmTest, BinaryDeserializeRejectsEveryTruncatedPrefix) {
  auto data = LinearProblem(50, 3, 5, 0.1, 29);
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  std::string blob = model->SerializeBinary();
  for (size_t len = 0; len < blob.size(); len += 7) {
    auto truncated = RankSvmModel::Deserialize(blob.substr(0, len));
    EXPECT_FALSE(truncated.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(RankSvmTest, BinaryDeserializeRejectsCorruptSizeFields) {
  auto data = LinearProblem(50, 3, 5, 0.1, 31);
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  std::string blob = model->SerializeBinary();
  // Layout: u32 magic length + 14 magic bytes + u16 kernel, then the
  // three u32 size fields (dim, weights, rff_dim) at offset 20.
  const size_t sizes_at = 4 + 14 + 2;
  std::string corrupt = blob;
  for (size_t i = 0; i < 12; ++i) corrupt[sizes_at + i] = '\xFF';
  // The declared counts exceed the blob by orders of magnitude; the
  // loader must reject before allocating, not abort or overread.
  auto res = RankSvmModel::Deserialize(corrupt);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);

  // A single inflated dimension (weights kept consistent for the linear
  // kernel) must also be caught by the byte-budget check.
  std::string inflated = blob;
  inflated[sizes_at + 3] = '\x7F';      // dim high byte
  inflated[sizes_at + 4 + 3] = '\x7F';  // weights high byte, same value
  EXPECT_FALSE(RankSvmModel::Deserialize(inflated).ok());
}

// --- Golden equivalence: flat trainer vs the preserved scalar trainer ---

void ExpectBitIdentical(const RankSvmModel& a, const RankSvmModel& b) {
  // Serialized blobs cover every field (standardization, weights, RFF
  // projection) with exact doubles, so blob equality is bit equality.
  EXPECT_EQ(a.SerializeBinary(), b.SerializeBinary());
  ASSERT_EQ(a.weights().size(), b.weights().size());
  for (size_t i = 0; i < a.weights().size(); ++i) {
    EXPECT_EQ(a.weights()[i], b.weights()[i]) << "weight " << i;
  }
}

TEST(RankSvmGoldenTest, LinearWeightsBitIdenticalToLegacy) {
  auto data = LinearProblem(400, 6, 8, 0.1, 42);
  RankSvmConfig cfg;
  auto legacy = LegacyRankSvmTrainer(cfg).Train(data);
  auto flat = RankSvmTrainer(cfg).Train(data);
  ASSERT_TRUE(legacy.ok() && flat.ok());
  ExpectBitIdentical(*flat, *legacy);
}

TEST(RankSvmGoldenTest, RbfWeightsBitIdenticalToLegacy) {
  RankSvmConfig cfg;
  cfg.kernel = SvmKernel::kRbfFourier;
  cfg.rff_dim = 96;
  auto data = LinearProblem(300, 5, 6, 0.2, 77);
  auto legacy = LegacyRankSvmTrainer(cfg).Train(data);
  auto flat = RankSvmTrainer(cfg).Train(data);
  ASSERT_TRUE(legacy.ok() && flat.ok());
  ExpectBitIdentical(*flat, *legacy);
}

TEST(RankSvmGoldenTest, ParallelTransformBitIdenticalToLegacy) {
  RankSvmConfig cfg;
  cfg.kernel = SvmKernel::kRbfFourier;
  cfg.rff_dim = 48;
  auto data = LinearProblem(300, 4, 6, 0.2, 5);
  auto legacy = LegacyRankSvmTrainer(cfg).Train(data);
  ASSERT_TRUE(legacy.ok());
  for (unsigned threads : {1u, 2u, 4u}) {
    cfg.num_threads = threads;
    auto flat = RankSvmTrainer(cfg).Train(data);
    ASSERT_TRUE(flat.ok());
    ExpectBitIdentical(*flat, *legacy);
  }
}

TEST(RankSvmGoldenTest, MaxPairsTruncationMatchesLegacyAndWarns) {
  auto data = LinearProblem(200, 4, 10, 0.1, 33);
  RankSvmConfig cfg;
  cfg.max_pairs = 50;  // Far fewer than the ~900 candidate pairs.
  auto legacy = LegacyRankSvmTrainer(cfg).Train(data);
  ASSERT_TRUE(legacy.ok());
  ScopedLogCapture capture;
  auto flat = RankSvmTrainer(cfg).Train(data);
  ASSERT_TRUE(flat.ok());
  ExpectBitIdentical(*flat, *legacy);
  ASSERT_EQ(capture.messages().size(), 1u);
  EXPECT_EQ(capture.levels()[0], LogLevel::kWarn);
  EXPECT_NE(capture.messages()[0].find("max_pairs=50"), std::string::npos)
      << capture.messages()[0];
  EXPECT_NE(capture.messages()[0].find("biased"), std::string::npos);
}

TEST(RankSvmTest, NoTruncationWarningBelowCap) {
  auto data = LinearProblem(100, 4, 5, 0.1, 33);
  ScopedLogCapture capture;
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(capture.messages().empty());
}

TEST(RankSvmTest, TransformBatchDeterministicAcrossWorkers) {
  RankSvmConfig cfg;
  cfg.kernel = SvmKernel::kRbfFourier;
  cfg.rff_dim = 32;
  auto data = LinearProblem(150, 4, 5, 0.1, 61);
  auto model = RankSvmTrainer(cfg).Train(data);
  ASSERT_TRUE(model.ok());
  std::vector<std::vector<double>> rows;
  for (const auto& inst : data) rows.push_back(inst.features);
  const std::vector<double> serial = model->TransformBatch(rows, 1);
  EXPECT_EQ(serial.size(), rows.size() * model->FeatureDim());
  for (unsigned threads : {2u, 4u}) {
    const std::vector<double> parallel = model->TransformBatch(rows, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << "row element " << i;
    }
  }
}

}  // namespace
}  // namespace ckr
