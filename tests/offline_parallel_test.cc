// Determinism of the parallel offline fan-out: OfflineConceptMiner must
// produce exactly the same MinedConcept slots for any worker count.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "features/offline_miner.h"

namespace ckr {
namespace {

class ParallelMiningTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = Pipeline::Build(PipelineConfig::SmallForTests());
    ASSERT_TRUE(built.ok()) << built.status().message();
    pipeline_ = built.value().release();
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static std::vector<ConceptKey> SampleConcepts(size_t stride) {
    std::vector<ConceptKey> concepts;
    const World& world = pipeline_->world();
    for (size_t i = 0; i < world.NumEntities(); i += stride) {
      const Entity& e = world.entity(static_cast<EntityId>(i));
      concepts.push_back({e.key, e.type});
    }
    return concepts;
  }

  static void ExpectSameVector(const InterestingnessVector& a,
                               const InterestingnessVector& b, size_t c) {
    // Exact equality: parallel mining must be bit-identical to serial.
    EXPECT_EQ(a.freq_exact, b.freq_exact) << c;
    EXPECT_EQ(a.freq_phrase_contained, b.freq_phrase_contained) << c;
    EXPECT_EQ(a.unit_score, b.unit_score) << c;
    EXPECT_EQ(a.searchengine_phrase, b.searchengine_phrase) << c;
    EXPECT_EQ(a.concept_size, b.concept_size) << c;
    EXPECT_EQ(a.number_of_chars, b.number_of_chars) << c;
    EXPECT_EQ(a.subconcepts, b.subconcepts) << c;
    EXPECT_EQ(a.wiki_word_count, b.wiki_word_count) << c;
    EXPECT_EQ(a.high_level_type, b.high_level_type) << c;
  }

  static void ExpectSameMined(const std::vector<MinedConcept>& a,
                              const std::vector<MinedConcept>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
      ExpectSameVector(a[c].interestingness, b[c].interestingness, c);
      for (size_t r = 0; r < kNumRelevanceResources; ++r) {
        ASSERT_EQ(a[c].relevance[r].size(), b[c].relevance[r].size())
            << "concept " << c << " resource " << r;
        for (size_t t = 0; t < a[c].relevance[r].size(); ++t) {
          EXPECT_EQ(a[c].relevance[r][t].term, b[c].relevance[r][t].term);
          EXPECT_EQ(a[c].relevance[r][t].score, b[c].relevance[r][t].score);
        }
      }
    }
  }

  static Pipeline* pipeline_;
};

Pipeline* ParallelMiningTest::pipeline_ = nullptr;

TEST_F(ParallelMiningTest, OutputIdenticalAcrossWorkerCounts) {
  std::vector<ConceptKey> concepts = SampleConcepts(9);
  ASSERT_GE(concepts.size(), 8u);

  OfflineConceptMiner miner(pipeline_->interestingness(),
                            pipeline_->relevance_miner());
  std::vector<MinedConcept> serial = miner.MineAll(concepts, 25, 1);
  for (unsigned workers : {2u, 4u}) {
    std::vector<MinedConcept> parallel = miner.MineAll(concepts, 25, workers);
    ExpectSameMined(serial, parallel);
  }
}

TEST_F(ParallelMiningTest, StatsAccountForEveryConcept) {
  std::vector<ConceptKey> concepts = SampleConcepts(17);
  OfflineConceptMiner miner(pipeline_->interestingness(),
                            pipeline_->relevance_miner());
  OfflineMiningStats stats;
  miner.MineAll(concepts, 10, 3, &stats);
  EXPECT_EQ(stats.workers, 3u);
  ASSERT_EQ(stats.worker_busy_seconds.size(), 3u);
  ASSERT_EQ(stats.worker_concepts.size(), 3u);
  uint64_t mined = 0;
  for (uint64_t n : stats.worker_concepts) mined += n;
  EXPECT_EQ(mined, concepts.size());
  EXPECT_GE(stats.wall_seconds, 0.0);
}

TEST_F(ParallelMiningTest, ZeroWorkersMeansHardwareDefault) {
  std::vector<ConceptKey> concepts = SampleConcepts(40);
  OfflineConceptMiner miner(pipeline_->interestingness(),
                            pipeline_->relevance_miner());
  OfflineMiningStats stats;
  std::vector<MinedConcept> a = miner.MineAll(concepts, 10, 0, &stats);
  EXPECT_GE(stats.workers, 1u);
  std::vector<MinedConcept> b = miner.MineAll(concepts, 10, 1);
  ExpectSameMined(a, b);
}

TEST_F(ParallelMiningTest, EmptyInputYieldsEmptyOutput) {
  OfflineConceptMiner miner(pipeline_->interestingness(),
                            pipeline_->relevance_miner());
  EXPECT_TRUE(miner.MineAll({}, 10, 4).empty());
}

}  // namespace
}  // namespace ckr
