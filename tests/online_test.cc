// Unit tests for ckr_online: the Section VIII online CTR adaptation.
#include <gtest/gtest.h>

#include <cmath>

#include "online/ctr_tracker.h"

namespace ckr {
namespace {

TEST(CtrTrackerTest, EmptyTrackerIsNeutral) {
  CtrTracker tracker;
  EXPECT_EQ(tracker.NumTracked(), 0u);
  EXPECT_DOUBLE_EQ(tracker.Adjustment("anything"), 0.0);
  EXPECT_FALSE(tracker.IsSpiking("anything"));
  EXPECT_GT(tracker.SystemCtr(), 0.0);
}

TEST(CtrTrackerTest, SmoothedCtrShrinksTowardSystem) {
  CtrTracker tracker;
  // Establish a system CTR of ~2%.
  tracker.Record("bulk", 100000, 2000);
  // A concept with 5 views and 5 clicks should NOT look like CTR 1.0.
  tracker.Record("tiny", 5, 5);
  double smoothed = tracker.SmoothedCtr("tiny");
  EXPECT_GT(smoothed, tracker.SystemCtr());
  EXPECT_LT(smoothed, 0.1);  // Far below the raw 1.0.
}

TEST(CtrTrackerTest, HotConceptGetsPositiveAdjustment) {
  CtrTracker tracker;
  tracker.Record("bulk", 100000, 2000);     // System ~2%.
  tracker.Record("hot", 5000, 500);         // 10%.
  tracker.Record("cold", 5000, 10);         // 0.2%.
  EXPECT_GT(tracker.Adjustment("hot"), 0.3);
  EXPECT_LT(tracker.Adjustment("cold"), -0.3);
  EXPECT_DOUBLE_EQ(tracker.Adjustment("unseen"), 0.0);
}

TEST(CtrTrackerTest, AdjustmentIsClamped) {
  CtrTrackerConfig cfg;
  cfg.max_adjustment = 0.5;
  cfg.adjustment_weight = 2.0;
  CtrTracker tracker(cfg);
  tracker.Record("bulk", 1000000, 1000);
  tracker.Record("viral", 50000, 40000);  // Extreme ratio.
  EXPECT_LE(tracker.Adjustment("viral"), 1.0 + 1e-12);   // 2.0 * 0.5.
  tracker.Record("dead", 50000, 0);
  EXPECT_GE(tracker.Adjustment("dead"), -1.0 - 1e-12);
}

TEST(CtrTrackerTest, TickDecaysHistory) {
  CtrTrackerConfig cfg;
  cfg.decay = 0.5;
  cfg.prior_views = 10;
  CtrTracker tracker(cfg);
  tracker.Record("bulk", 100000, 2000);
  tracker.Record("fad", 10000, 2000);  // 20% CTR this period.
  tracker.Tick();
  double right_after = tracker.SmoothedCtr("fad");
  // Several quiet periods: history decays, estimate returns to the prior.
  for (int i = 0; i < 12; ++i) tracker.Tick();
  double much_later = tracker.SmoothedCtr("fad");
  EXPECT_LT(much_later, right_after);
  EXPECT_NEAR(much_later, tracker.SystemCtr(), 0.05);
}

TEST(CtrTrackerTest, SpikeDetection) {
  CtrTrackerConfig cfg;
  cfg.spike_ratio = 3.0;
  cfg.spike_min_views = 50;
  CtrTracker tracker(cfg);
  // History: steady 2% for both concepts.
  tracker.Record("steady", 10000, 200);
  tracker.Record("event", 10000, 200);
  tracker.Record("bulk", 100000, 2000);
  tracker.Tick();
  // Fresh period: "event" jumps to 20%.
  tracker.Record("steady", 1000, 20);
  tracker.Record("event", 1000, 200);
  EXPECT_FALSE(tracker.IsSpiking("steady"));
  EXPECT_TRUE(tracker.IsSpiking("event"));
  auto spiking = tracker.SpikingConcepts();
  ASSERT_EQ(spiking.size(), 1u);
  EXPECT_EQ(spiking[0], "event");
}

TEST(CtrTrackerTest, SpikeNeedsFreshVolume) {
  CtrTrackerConfig cfg;
  cfg.spike_min_views = 100;
  CtrTracker tracker(cfg);
  tracker.Record("bulk", 100000, 2000);
  tracker.Tick();
  tracker.Record("thin", 20, 20);  // 100% CTR but only 20 views.
  EXPECT_FALSE(tracker.IsSpiking("thin"));
}

// --- Cold-start regressions: the intended behavior is neutrality. A
// concept with no usable evidence gets adjustment 0 (never the full
// punishment band) and never spikes before Tick() has folded at least
// one period into its history.

TEST(CtrTrackerTest, ZeroPriorZeroViewsStaysFiniteAndNeutral) {
  CtrTrackerConfig cfg;
  cfg.prior_views = 0.0;  // Degenerate prior: the 0/0 case.
  CtrTracker tracker(cfg);
  tracker.Record("cold", 0, 0);  // Tracked, but zero observations.
  double smoothed = tracker.SmoothedCtr("cold");
  EXPECT_FALSE(std::isnan(smoothed));
  EXPECT_DOUBLE_EQ(smoothed, tracker.SystemCtr());
  EXPECT_DOUBLE_EQ(tracker.Adjustment("cold"), 0.0);
}

TEST(CtrTrackerTest, ZeroClickColdConceptIsNeutralNotPunished) {
  CtrTrackerConfig cfg;
  cfg.prior_views = 0.0;  // Smoothed CTR is exactly 0 with no clicks.
  CtrTracker tracker(cfg);
  tracker.Record("bulk", 100000, 2000);
  tracker.Record("cold", 3, 0);  // Three views, no clicks: not evidence.
  // ln(0) used to clamp this to the full -max_adjustment.
  EXPECT_DOUBLE_EQ(tracker.Adjustment("cold"), 0.0);
}

TEST(CtrTrackerTest, NoSpikeBeforeFirstTick) {
  CtrTracker tracker;  // Default spike_ratio 3, spike_min_views 50.
  tracker.Record("bulk", 100000, 1000);  // System CTR ~1%.
  // Hot first-period concept (50% CTR, 100 views) with no history at
  // all: its fresh CTR dwarfs the system rate, and before the
  // history gate this spiked on the very first period.
  tracker.Record("brand_new", 100, 50);
  EXPECT_FALSE(tracker.IsSpiking("brand_new"));
  EXPECT_TRUE(tracker.SpikingConcepts().empty());
}

TEST(CtrTrackerTest, SpikesStillFireOnceHistoryExists) {
  CtrTracker tracker;
  tracker.Record("bulk", 100000, 2000);
  tracker.Record("concept", 1000, 20);  // 2%, in line with the system.
  tracker.Tick();
  tracker.Record("concept", 1000, 200);  // Jumps to 20%.
  EXPECT_TRUE(tracker.IsSpiking("concept"));
}

TEST(CtrTrackerTest, RecordAccumulatesWithinPeriod) {
  CtrTracker tracker;
  tracker.Record("x", 100, 10);
  tracker.Record("x", 100, 10);
  tracker.Record("bulk", 100000, 1000);
  double two_batches = tracker.SmoothedCtr("x");
  CtrTracker tracker2;
  tracker2.Record("x", 200, 20);
  tracker2.Record("bulk", 100000, 1000);
  EXPECT_DOUBLE_EQ(two_batches, tracker2.SmoothedCtr("x"));
}

}  // namespace
}  // namespace ckr
