// Unit tests for ckr_online: the Section VIII online CTR adaptation.
#include <gtest/gtest.h>

#include <cmath>

#include "online/ctr_tracker.h"

namespace ckr {
namespace {

TEST(CtrTrackerTest, EmptyTrackerIsNeutral) {
  CtrTracker tracker;
  EXPECT_EQ(tracker.NumTracked(), 0u);
  EXPECT_DOUBLE_EQ(tracker.Adjustment("anything"), 0.0);
  EXPECT_FALSE(tracker.IsSpiking("anything"));
  EXPECT_GT(tracker.SystemCtr(), 0.0);
}

TEST(CtrTrackerTest, SmoothedCtrShrinksTowardSystem) {
  CtrTracker tracker;
  // Establish a system CTR of ~2%.
  tracker.Record("bulk", 100000, 2000);
  // A concept with 5 views and 5 clicks should NOT look like CTR 1.0.
  tracker.Record("tiny", 5, 5);
  double smoothed = tracker.SmoothedCtr("tiny");
  EXPECT_GT(smoothed, tracker.SystemCtr());
  EXPECT_LT(smoothed, 0.1);  // Far below the raw 1.0.
}

TEST(CtrTrackerTest, HotConceptGetsPositiveAdjustment) {
  CtrTracker tracker;
  tracker.Record("bulk", 100000, 2000);     // System ~2%.
  tracker.Record("hot", 5000, 500);         // 10%.
  tracker.Record("cold", 5000, 10);         // 0.2%.
  EXPECT_GT(tracker.Adjustment("hot"), 0.3);
  EXPECT_LT(tracker.Adjustment("cold"), -0.3);
  EXPECT_DOUBLE_EQ(tracker.Adjustment("unseen"), 0.0);
}

TEST(CtrTrackerTest, AdjustmentIsClamped) {
  CtrTrackerConfig cfg;
  cfg.max_adjustment = 0.5;
  cfg.adjustment_weight = 2.0;
  CtrTracker tracker(cfg);
  tracker.Record("bulk", 1000000, 1000);
  tracker.Record("viral", 50000, 40000);  // Extreme ratio.
  EXPECT_LE(tracker.Adjustment("viral"), 1.0 + 1e-12);   // 2.0 * 0.5.
  tracker.Record("dead", 50000, 0);
  EXPECT_GE(tracker.Adjustment("dead"), -1.0 - 1e-12);
}

TEST(CtrTrackerTest, TickDecaysHistory) {
  CtrTrackerConfig cfg;
  cfg.decay = 0.5;
  cfg.prior_views = 10;
  CtrTracker tracker(cfg);
  tracker.Record("bulk", 100000, 2000);
  tracker.Record("fad", 10000, 2000);  // 20% CTR this period.
  tracker.Tick();
  double right_after = tracker.SmoothedCtr("fad");
  // Several quiet periods: history decays, estimate returns to the prior.
  for (int i = 0; i < 12; ++i) tracker.Tick();
  double much_later = tracker.SmoothedCtr("fad");
  EXPECT_LT(much_later, right_after);
  EXPECT_NEAR(much_later, tracker.SystemCtr(), 0.05);
}

TEST(CtrTrackerTest, SpikeDetection) {
  CtrTrackerConfig cfg;
  cfg.spike_ratio = 3.0;
  cfg.spike_min_views = 50;
  CtrTracker tracker(cfg);
  // History: steady 2% for both concepts.
  tracker.Record("steady", 10000, 200);
  tracker.Record("event", 10000, 200);
  tracker.Record("bulk", 100000, 2000);
  tracker.Tick();
  // Fresh period: "event" jumps to 20%.
  tracker.Record("steady", 1000, 20);
  tracker.Record("event", 1000, 200);
  EXPECT_FALSE(tracker.IsSpiking("steady"));
  EXPECT_TRUE(tracker.IsSpiking("event"));
  auto spiking = tracker.SpikingConcepts();
  ASSERT_EQ(spiking.size(), 1u);
  EXPECT_EQ(spiking[0], "event");
}

TEST(CtrTrackerTest, SpikeNeedsFreshVolume) {
  CtrTrackerConfig cfg;
  cfg.spike_min_views = 100;
  CtrTracker tracker(cfg);
  tracker.Record("bulk", 100000, 2000);
  tracker.Tick();
  tracker.Record("thin", 20, 20);  // 100% CTR but only 20 views.
  EXPECT_FALSE(tracker.IsSpiking("thin"));
}

TEST(CtrTrackerTest, RecordAccumulatesWithinPeriod) {
  CtrTracker tracker;
  tracker.Record("x", 100, 10);
  tracker.Record("x", 100, 10);
  tracker.Record("bulk", 100000, 1000);
  double two_batches = tracker.SmoothedCtr("x");
  CtrTracker tracker2;
  tracker2.Record("x", 200, 20);
  tracker2.Record("bulk", 100000, 1000);
  EXPECT_DOUBLE_EQ(two_batches, tracker2.SmoothedCtr("x"));
}

}  // namespace
}  // namespace ckr
