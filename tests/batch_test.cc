// Batch-serving tests: ProcessBatch determinism across thread counts,
// agreement with per-document processing, and flat-vs-legacy ranking
// bit-identity (the hard invariant behind the Section VI layout refactor).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/contextual_ranker.h"
#include "corpus/doc_generator.h"

namespace ckr {
namespace {

bool SameRanking(const std::vector<RankedAnnotation>& a,
                 const std::vector<RankedAnnotation>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key || a[i].begin != b[i].begin ||
        a[i].end != b[i].end || a[i].type != b[i].type ||
        a[i].score != b[i].score) {  // Exact: bit-identical scores required.
      return false;
    }
  }
  return true;
}

class BatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ContextualRankerOptions options;
    options.pipeline = PipelineConfig::SmallForTests();
    auto ranker_or = ContextualRanker::Train(options);
    ASSERT_TRUE(ranker_or.ok()) << ranker_or.status().ToString();
    ranker_ = ranker_or->release();

    DocGenerator gen(ranker_->pipeline().world());
    docs_ = new std::vector<std::string>();
    for (DocId id = 700000; id < 700030; ++id) {
      docs_->push_back(gen.Generate(Document::Kind::kNews, id).text);
    }
    views_ = new std::vector<std::string_view>(docs_->begin(), docs_->end());
  }

  static void TearDownTestSuite() {
    delete views_;
    views_ = nullptr;
    delete docs_;
    docs_ = nullptr;
    delete ranker_;
    ranker_ = nullptr;
  }

  static ContextualRanker* ranker_;
  static std::vector<std::string>* docs_;
  static std::vector<std::string_view>* views_;
};

ContextualRanker* BatchTest::ranker_ = nullptr;
std::vector<std::string>* BatchTest::docs_ = nullptr;
std::vector<std::string_view>* BatchTest::views_ = nullptr;

TEST_F(BatchTest, ThreadCountDoesNotChangeResults) {
  const RuntimeRanker& runtime = ranker_->runtime();
  auto baseline = runtime.ProcessBatch(*views_, 1);
  ASSERT_EQ(baseline.size(), views_->size());
  for (unsigned threads : {2u, 8u}) {
    auto got = runtime.ProcessBatch(*views_, threads);
    ASSERT_EQ(got.size(), baseline.size()) << "threads=" << threads;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(SameRanking(got[i], baseline[i]))
          << "threads=" << threads << " doc=" << i;
    }
  }
}

TEST_F(BatchTest, BatchAgreesWithPerDocumentProcessing) {
  const RuntimeRanker& runtime = ranker_->runtime();
  auto batched = runtime.ProcessBatch(*views_, 4);
  ASSERT_EQ(batched.size(), views_->size());
  for (size_t i = 0; i < views_->size(); ++i) {
    auto single = runtime.ProcessDocument((*views_)[i]);
    EXPECT_TRUE(SameRanking(batched[i], single)) << "doc=" << i;
  }
}

TEST_F(BatchTest, FlatPathIsBitIdenticalToLegacy) {
  const RuntimeRanker& runtime = ranker_->runtime();
  size_t nonempty = 0;
  for (size_t i = 0; i < views_->size(); ++i) {
    auto flat = runtime.ProcessDocument((*views_)[i]);
    auto legacy = runtime.ProcessDocumentLegacy((*views_)[i]);
    EXPECT_TRUE(SameRanking(flat, legacy)) << "doc=" << i;
    if (!flat.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, views_->size() / 2);  // The comparison is not vacuous.
}

TEST_F(BatchTest, BatchStatsAndTruncationThroughPublicApi) {
  ContextualRankerOptions options;
  options.pipeline = PipelineConfig::SmallForTests();
  // RankBatch mutates accumulated stats, so use a private instance rather
  // than the shared fixture ranker.
  auto ranker_or = ContextualRanker::Train(options);
  ASSERT_TRUE(ranker_or.ok()) << ranker_or.status().ToString();
  const ContextualRanker& ranker = **ranker_or;

  std::vector<std::string_view> views(views_->begin(), views_->begin() + 8);
  auto full = ranker.RankBatch(views, 2);
  ASSERT_EQ(full.size(), views.size());
  EXPECT_EQ(ranker.stats().documents, views.size());
  uint64_t bytes = 0;
  for (std::string_view v : views) bytes += v.size();
  EXPECT_EQ(ranker.stats().bytes_processed, bytes);
  EXPECT_GT(ranker.stats().stemmer_seconds, 0.0);
  EXPECT_GT(ranker.stats().ranker_seconds, 0.0);
  EXPECT_DOUBLE_EQ(ranker.stats().ranker_seconds,
                   ranker.stats().match_seconds + ranker.stats().score_seconds);

  auto top2 = ranker.RankBatch(views, 2, /*top_n=*/2);
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_LE(top2[i].size(), 2u);
    if (!full[i].empty()) {
      ASSERT_FALSE(top2[i].empty());
      EXPECT_EQ(top2[i][0].key, full[i][0].key);
    }
  }

  // An empty batch is a no-op for results and counters.
  auto empty = ranker.RankBatch({}, 4);
  EXPECT_TRUE(empty.empty());
}

}  // namespace
}  // namespace ckr
