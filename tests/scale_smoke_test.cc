// Corpus-scale smoke: streams a ~50k-document scaled world through the
// out-of-core index build (no stored text, deferred block index), builds
// the same index under bisection docid reordering, and checks the scale
// contract end to end — identical ranked results modulo layout, smaller
// compressed postings, and an ORCAS-shaped click log over the same corpus.
//
// Gated behind CKR_SCALE_SMOKE because it costs tens of seconds on one
// core: scripts/check_all.sh sets the flag; plain ctest skips.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "clicks/click_log.h"
#include "corpus/corpus_stream.h"
#include "corpus/document.h"
#include "corpus/world.h"
#include "index/inverted_index.h"

namespace ckr {
namespace {

constexpr size_t kSmokeDocs = 50000;

TEST(ScaleSmokeTest, StreamedBuildReorderAndClickLog) {
  if (std::getenv("CKR_SCALE_SMOKE") == nullptr) {
    GTEST_SKIP() << "set CKR_SCALE_SMOKE=1 to run the corpus-scale smoke";
  }
  auto world_or = World::Create(ScaledWorldConfig(kSmokeDocs, 20090331));
  ASSERT_TRUE(world_or.ok()) << world_or.status().message();
  const World& world = *world_or.value();
  CorpusStreamer streamer(world);

  IndexBuildOptions stream_opts;
  stream_opts.store_text = false;       // Out-of-core regime: text dropped.
  stream_opts.build_block_index = false;  // Deferred until after Finalize.
  InvertedIndex baseline(stream_opts);
  IndexBuildOptions reorder_opts = stream_opts;
  reorder_opts.docid_order = DocidOrder::kBisection;
  InvertedIndex reordered(reorder_opts);

  CorpusStreamConfig stream_cfg;
  stream_cfg.workers = 2;
  Status s = streamer.Stream(Document::Kind::kWeb, kSmokeDocs, stream_cfg,
                             [&](Document&& doc) {
                               baseline.Add(doc);
                               reordered.Add(doc);
                             });
  ASSERT_TRUE(s.ok()) << s.message();
  baseline.Finalize();
  reordered.Finalize();
  ASSERT_EQ(baseline.NumDocs(), kSmokeDocs);
  ASSERT_EQ(reordered.NumDocs(), kSmokeDocs);
  ASSERT_EQ(baseline.NumTerms(), reordered.NumTerms());

  baseline.RebuildBlockIndex(BlockCodec::kVarintGB);
  reordered.RebuildBlockIndex(BlockCodec::kVarintGB);

  // Locality payoff: clustering topically similar documents shrinks the
  // delta gaps, so the serialized block postings must not grow.
  const size_t baseline_bytes = baseline.SerializeBlockIndex().size();
  const size_t reordered_bytes = reordered.SerializeBlockIndex().size();
  EXPECT_LE(reordered_bytes, baseline_bytes)
      << "bisection made the compressed index larger";

  // Ranked results are layout-independent: same docs, bit-identical
  // scores, under every evaluator.
  std::vector<std::string> queries;
  for (size_t i = 0; i < world.NumEntities(); i += 97) {
    queries.push_back(world.entity(static_cast<EntityId>(i)).key);
  }
  for (const std::string& q : queries) {
    const auto oracle = baseline.Search(q, 20);
    EXPECT_EQ(baseline.RegularResultCount(q), reordered.RegularResultCount(q))
        << q;
    for (QueryEvaluator evaluator :
         {QueryEvaluator::kExhaustive, QueryEvaluator::kMaxScore,
          QueryEvaluator::kBlockMaxWand}) {
      const auto got = reordered.Search(q, 20, Bm25Params{}, evaluator);
      ASSERT_EQ(oracle.size(), got.size()) << q;
      for (size_t i = 0; i < oracle.size(); ++i) {
        ASSERT_EQ(oracle[i].doc, got[i].doc) << q << " rank " << i;
        ASSERT_EQ(oracle[i].score, got[i].score) << q << " rank " << i;
      }
    }
  }

  // ORCAS-regime click log over the same corpus (6 pairs/doc default).
  ClickLogConfig click_cfg;
  click_cfg.workers = 2;
  ClickLogGenerator log(world, Document::Kind::kWeb, kSmokeDocs, click_cfg);
  EXPECT_EQ(log.NumPairs(), kSmokeDocs * 6);
  StatusOr<ClickLogStats> stats = CollectClickLogStats(log);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_EQ(stats->pairs, kSmokeDocs * 6);
  EXPECT_LT(stats->distinct_query_doc_pairs, stats->pairs);
  EXPECT_GT(stats->distinct_queries, 500u);
  EXPECT_GT(stats->distinct_docs, kSmokeDocs / 4);
}

}  // namespace
}  // namespace ckr
