// Unit tests for ckr_querylog: aggregated log lookups and the traffic
// generator.
#include <gtest/gtest.h>

#include <cmath>

#include "corpus/world.h"
#include "querylog/query_generator.h"
#include "querylog/query_log.h"

namespace ckr {
namespace {

QueryLog MakeSmallLog() {
  QueryLog log;
  log.AddQuery("tom cruise", 50);
  log.AddQuery("tom cruise movies", 20);
  log.AddQuery("cruise ship", 10);
  log.AddQuery("tom", 5);
  log.AddQuery("global warming", 30);
  log.Finalize();
  return log;
}

TEST(QueryLogTest, ExactFreq) {
  QueryLog log = MakeSmallLog();
  EXPECT_EQ(log.ExactFreq("tom cruise"), 50u);
  EXPECT_EQ(log.ExactFreq("Tom  Cruise!"), 50u);  // Normalization applies.
  EXPECT_EQ(log.ExactFreq("cruise"), 0u);
  EXPECT_EQ(log.ExactFreq("unseen query"), 0u);
}

TEST(QueryLogTest, PhraseContainedFreq) {
  QueryLog log = MakeSmallLog();
  // "tom cruise" appears in "tom cruise" (50) and "tom cruise movies" (20).
  EXPECT_EQ(log.PhraseContainedFreq("tom cruise"), 70u);
  // "cruise" appears in three queries: 50 + 20 + 10.
  EXPECT_EQ(log.PhraseContainedFreq("cruise"), 80u);
  // Non-contiguous "tom movies" is not a contained phrase.
  EXPECT_EQ(log.PhraseContainedFreq("tom movies"), 0u);
}

TEST(QueryLogTest, AggregationAcrossAddCalls) {
  QueryLog log;
  log.AddQuery("iraq war", 3);
  log.AddQuery("iraq war", 4);
  log.Finalize();
  EXPECT_EQ(log.ExactFreq("iraq war"), 7u);
  EXPECT_EQ(log.NumDistinctQueries(), 1u);
  EXPECT_EQ(log.TotalSubmissions(), 7u);
}

TEST(QueryLogTest, TermAndPairFreq) {
  QueryLog log = MakeSmallLog();
  EXPECT_EQ(log.TermFreq("tom"), 75u);     // 50 + 20 + 5.
  EXPECT_EQ(log.TermFreq("cruise"), 80u);  // 50 + 20 + 10.
  EXPECT_EQ(log.PairFreq("tom", "cruise"), 70u);
  EXPECT_EQ(log.PairFreq("cruise", "tom"), 70u);  // Order-independent.
  EXPECT_EQ(log.PairFreq("tom", "warming"), 0u);
}

TEST(QueryLogTest, MutualInformationPositiveForAssociatedTerms) {
  QueryLog log = MakeSmallLog();
  // p(tom, cruise) >> p(tom) p(cruise) over 115 submissions.
  double mi = log.MutualInformation("tom", "cruise");
  double expected = std::log((70.0 / 115.0) / ((75.0 / 115.0) * (80.0 / 115.0)));
  EXPECT_NEAR(mi, expected, 1e-12);
  EXPECT_GT(mi, 0.0);
  EXPECT_EQ(log.MutualInformation("tom", "nosuch"), 0.0);
}

TEST(QueryLogTest, QueriesWithTermIndex) {
  QueryLog log = MakeSmallLog();
  const auto& qids = log.QueriesWithTerm("cruise");
  EXPECT_EQ(qids.size(), 3u);
  for (uint32_t qid : qids) {
    const QueryEntry& q = log.entries()[qid];
    bool found = false;
    for (const auto& t : q.terms) found |= (t == "cruise");
    EXPECT_TRUE(found) << q.text;
  }
  EXPECT_TRUE(log.QueriesWithTerm("nosuch").empty());
}

TEST(QueryLogTest, EmptyQueriesIgnored) {
  QueryLog log;
  log.AddQuery("", 10);
  log.AddQuery("   ", 10);
  log.AddQuery("real", 1);
  log.Finalize();
  EXPECT_EQ(log.NumDistinctQueries(), 1u);
}

TEST(QueryLogTest, FinalizeIsDeterministic) {
  QueryLog a = MakeSmallLog();
  QueryLog b = MakeSmallLog();
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (size_t i = 0; i < a.entries().size(); ++i) {
    EXPECT_EQ(a.entries()[i].text, b.entries()[i].text);
    EXPECT_EQ(a.entries()[i].freq, b.entries()[i].freq);
  }
}

class QueryGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorldConfig cfg;
    cfg.num_topics = 6;
    cfg.background_vocab = 600;
    cfg.words_per_topic = 40;
    cfg.num_named_entities = 150;
    cfg.num_concepts = 100;
    cfg.num_generic_concepts = 10;
    auto world_or = World::Create(cfg);
    ASSERT_TRUE(world_or.ok());
    world_ = std::move(*world_or);
  }
  std::unique_ptr<World> world_;
};

TEST_F(QueryGeneratorTest, GeneratesRequestedVolume) {
  QueryGeneratorConfig cfg;
  cfg.num_submissions = 20000;
  QueryGenerator gen(*world_, cfg);
  QueryLog log = gen.Generate();
  EXPECT_TRUE(log.finalized());
  EXPECT_EQ(log.TotalSubmissions(), 20000u);
  EXPECT_GT(log.NumDistinctQueries(), 1000u);
}

TEST_F(QueryGeneratorTest, PopularEntitiesQueriedMore) {
  QueryGeneratorConfig cfg;
  cfg.num_submissions = 60000;
  QueryGenerator gen(*world_, cfg);
  QueryLog log = gen.Generate();
  // Average exact-query frequency of the top popularity quartile should
  // dominate the bottom quartile.
  std::vector<const Entity*> sorted;
  for (const Entity& e : world_->entities()) {
    if (!e.is_generic) sorted.push_back(&e);
  }
  std::sort(sorted.begin(), sorted.end(), [](const Entity* a, const Entity* b) {
    return a->popularity > b->popularity;
  });
  size_t q = sorted.size() / 4;
  double top = 0, bottom = 0;
  for (size_t i = 0; i < q; ++i) {
    top += static_cast<double>(log.ExactFreq(sorted[i]->key));
    bottom += static_cast<double>(
        log.ExactFreq(sorted[sorted.size() - 1 - i]->key));
  }
  EXPECT_GT(top, 5.0 * (bottom + 1.0));
}

TEST_F(QueryGeneratorTest, DeterministicInSeed) {
  QueryGeneratorConfig cfg;
  cfg.num_submissions = 5000;
  QueryLog a = QueryGenerator(*world_, cfg).Generate();
  QueryLog b = QueryGenerator(*world_, cfg).Generate();
  EXPECT_EQ(a.NumDistinctQueries(), b.NumDistinctQueries());
  cfg.seed = 8;
  QueryLog c = QueryGenerator(*world_, cfg).Generate();
  EXPECT_NE(a.NumDistinctQueries(), c.NumDistinctQueries());
}

TEST_F(QueryGeneratorTest, PhraseContainmentAtLeastExact) {
  QueryGeneratorConfig cfg;
  cfg.num_submissions = 20000;
  QueryLog log = QueryGenerator(*world_, cfg).Generate();
  for (const Entity& e : world_->entities()) {
    EXPECT_GE(log.PhraseContainedFreq(e.key), log.ExactFreq(e.key)) << e.key;
  }
}

}  // namespace
}  // namespace ckr
