// Golden equivalence suite: the flat term-id index must be bit-identical
// to LegacyInvertedIndex on every public entry point, over a generated
// corpus large enough to exercise multi-block postings, phrase adjacency,
// and snippet windowing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/doc_generator.h"
#include "corpus/document.h"
#include "corpus/world.h"
#include "index/inverted_index.h"
#include "index/legacy_index.h"

namespace ckr {
namespace {

class IndexEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldConfig config;
    config.num_topics = 8;
    config.background_vocab = 900;
    config.words_per_topic = 60;
    config.num_named_entities = 120;
    config.num_concepts = 80;
    config.num_generic_concepts = 12;
    config.num_web_docs = 300;
    config.num_news_stories = 40;
    config.num_answers_snippets = 30;
    auto world = World::Create(config);
    ASSERT_TRUE(world.ok()) << world.status().message();
    world_ = world.value().release();

    DocGenerator gen(*world_);
    corpus_ = new std::vector<Document>(
        gen.GenerateCorpus(Document::Kind::kWeb, config.num_web_docs));

    legacy_ = new LegacyInvertedIndex();
    flat_ = new InvertedIndex();
    for (const Document& doc : *corpus_) {
      legacy_->Add(doc);
      flat_->Add(doc);
    }
    legacy_->Finalize();
    flat_->Finalize();
  }

  static void TearDownTestSuite() {
    delete flat_;
    delete legacy_;
    delete corpus_;
    delete world_;
    flat_ = nullptr;
    legacy_ = nullptr;
    corpus_ = nullptr;
    world_ = nullptr;
  }

  /// Queries covering single terms, multi-term disjunctions, entities
  /// (multi-token phrases that actually occur), and unseen terms.
  static std::vector<std::string> Queries() {
    std::vector<std::string> queries;
    for (size_t i = 0; i < world_->NumEntities(); i += 7) {
      queries.push_back(world_->entity(static_cast<EntityId>(i)).key);
    }
    queries.push_back("the");
    queries.push_back("zzz unseen qqq");
    queries.push_back("");
    // Mixed seen/unseen.
    queries.push_back(world_->entity(0).key + " zzzunseen");
    return queries;
  }

  static void ExpectSameResults(const std::vector<SearchResult>& a,
                                const std::vector<SearchResult>& b,
                                const std::string& query) {
    ASSERT_EQ(a.size(), b.size()) << "query: " << query;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc, b[i].doc) << "query: " << query << " rank " << i;
      // Bit-identical, not approximately equal.
      EXPECT_EQ(a[i].score, b[i].score) << "query: " << query << " rank " << i;
    }
  }

  static World* world_;
  static std::vector<Document>* corpus_;
  static LegacyInvertedIndex* legacy_;
  static InvertedIndex* flat_;
};

World* IndexEquivalenceTest::world_ = nullptr;
std::vector<Document>* IndexEquivalenceTest::corpus_ = nullptr;
LegacyInvertedIndex* IndexEquivalenceTest::legacy_ = nullptr;
InvertedIndex* IndexEquivalenceTest::flat_ = nullptr;

TEST_F(IndexEquivalenceTest, CollectionStats) {
  EXPECT_EQ(flat_->NumDocs(), legacy_->NumDocs());
  EXPECT_EQ(flat_->NumTerms(), legacy_->NumTerms());
}

TEST_F(IndexEquivalenceTest, DocFreq) {
  for (const std::string& q : Queries()) {
    EXPECT_EQ(flat_->DocFreq(q), legacy_->DocFreq(q)) << q;
  }
  EXPECT_EQ(flat_->DocFreq("absent"), 0u);
}

TEST_F(IndexEquivalenceTest, SearchTopK) {
  for (const std::string& q : Queries()) {
    for (size_t k : {1u, 10u, 100u, 100000u}) {
      ExpectSameResults(flat_->Search(q, k), legacy_->Search(q, k), q);
    }
  }
}

TEST_F(IndexEquivalenceTest, SearchNonDefaultParams) {
  Bm25Params params;
  params.k1 = 0.9;
  params.b = 0.4;
  for (const std::string& q : Queries()) {
    ExpectSameResults(flat_->Search(q, 50, params),
                      legacy_->Search(q, 50, params), q);
  }
}

TEST_F(IndexEquivalenceTest, PhraseSearchTopK) {
  for (const std::string& q : Queries()) {
    for (size_t k : {1u, 10u, 100000u}) {
      ExpectSameResults(flat_->PhraseSearch(q, k), legacy_->PhraseSearch(q, k),
                        q);
    }
  }
}

TEST_F(IndexEquivalenceTest, PhraseResultCount) {
  for (const std::string& q : Queries()) {
    EXPECT_EQ(flat_->PhraseResultCount(q), legacy_->PhraseResultCount(q)) << q;
  }
}

TEST_F(IndexEquivalenceTest, RegularResultCount) {
  for (const std::string& q : Queries()) {
    uint64_t want = legacy_->RegularResultCount(q);
    EXPECT_EQ(flat_->RegularResultCount(q), want) << q;
    // The count-only path must agree with full materialization too.
    EXPECT_EQ(flat_->RegularResultCount(q),
              legacy_->Search(q, legacy_->NumDocs() + 1).size())
        << q;
  }
}

TEST_F(IndexEquivalenceTest, Snippets) {
  for (const std::string& q : Queries()) {
    if (q.empty()) continue;
    auto results = legacy_->Search(q, 5);
    for (const SearchResult& r : results) {
      EXPECT_EQ(flat_->Snippet(r.doc, q), legacy_->Snippet(r.doc, q)) << q;
      EXPECT_EQ(flat_->Snippet(r.doc, q, 8), legacy_->Snippet(r.doc, q, 8))
          << q;
    }
  }
}

TEST_F(IndexEquivalenceTest, DocText) {
  for (const Document& doc : *corpus_) {
    EXPECT_EQ(flat_->DocText(doc.id), legacy_->DocText(doc.id));
  }
}

TEST_F(IndexEquivalenceTest, MemoryFootprintShrinks) {
  // The flat layout must not be larger than the node-based legacy layout.
  EXPECT_LT(flat_->MemoryBytes(), legacy_->MemoryBytes());
}

// CRLF text: both indexes must normalize \r (as well as \n and \t) to
// spaces so snippets stay single-line and byte-identical.
TEST(IndexSnippetNormalizationTest, CarriageReturnsBecomeSpaces) {
  Document doc;
  doc.id = 7;
  doc.text = "alpha beta\r\ngamma delta\ttail\rend";

  LegacyInvertedIndex legacy;
  InvertedIndex flat;
  legacy.Add(doc);
  flat.Add(doc);
  legacy.Finalize();
  flat.Finalize();

  std::string legacy_snip = legacy.Snippet(7, "gamma", 4);
  std::string flat_snip = flat.Snippet(7, "gamma", 4);
  EXPECT_EQ(flat_snip, legacy_snip);
  EXPECT_EQ(legacy_snip.find('\r'), std::string::npos);
  EXPECT_EQ(legacy_snip.find('\n'), std::string::npos);
  EXPECT_EQ(legacy_snip.find('\t'), std::string::npos);
}

}  // namespace
}  // namespace ckr
