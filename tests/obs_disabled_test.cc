// The CKR_OBS_DISABLED contract, proven the way check_release_test
// proves CKR_DCHECK: with the kill switch defined, every CKR_OBS_* hook
// is a true no-op — operands are never evaluated, the scoped timer is an
// empty object, and nothing reaches the global registry. This TU pins
// the disabled configuration regardless of how the build was configured;
// the library underneath keeps whatever the build chose, so the ranker
// fingerprint test below measures library behavior. scripts/check_all.sh
// runs it in both the default and the obs-off build and diffs the
// fingerprints to prove ranked outputs are bit-identical either way.
#ifndef CKR_OBS_DISABLED  // Already defined build-wide in the obs-off preset.
#define CKR_OBS_DISABLED
#endif
#include "obs/hooks.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/contextual_ranker.h"
#include "corpus/doc_generator.h"
#include "gtest/gtest.h"

namespace ckr {
namespace {

static_assert(CKR_OBS_ENABLED == 0,
              "per-TU CKR_OBS_DISABLED must switch the hooks off");

// The "zero-size hook": the disabled scoped timer declares an empty,
// trivially destructible object the optimizer erases entirely.
static_assert(std::is_empty_v<obs::NullStageTimer>);
static_assert(std::is_trivially_destructible_v<obs::NullStageTimer>);
static_assert(std::is_trivially_constructible_v<obs::NullStageTimer>);

// Disabled hooks are valid in constant expressions — their operands sit
// in unevaluated contexts, exactly like a release-mode CKR_DCHECK.
constexpr int ConstexprWithDisabledHooks(int x) {
  CKR_OBS_COUNTER_INC("never");
  CKR_OBS_COUNTER_ADD("never", x / 0);  // Unevaluated: even UB is inert.
  CKR_OBS_GAUGE_SET("never", x);
  CKR_OBS_HISTOGRAM_RECORD("never", x);
  return x + 1;
}
static_assert(ConstexprWithDisabledHooks(41) == 42);

TEST(ObsDisabledTest, HookOperandsAreNeverEvaluated) {
  int n = 0;
  CKR_OBS_COUNTER_INC(++n ? "a" : "b");
  CKR_OBS_COUNTER_ADD("a", ++n);
  CKR_OBS_GAUGE_SET("a", ++n);
  CKR_OBS_HISTOGRAM_RECORD("a", ++n);
  EXPECT_EQ(n, 0);
}

TEST(ObsDisabledTest, NothingReachesTheGlobalRegistry) {
  CKR_OBS_COUNTER_INC("obs_disabled_test.counter");
  CKR_OBS_GAUGE_SET("obs_disabled_test.gauge", 1.0);
  CKR_OBS_HISTOGRAM_RECORD("obs_disabled_test.hist", 1.0);
  {
    CKR_OBS_SCOPED_TIMER("obs_disabled_test.timer");
  }
  std::string json = obs::MetricRegistry::Global().SnapshotJson();
  EXPECT_EQ(json.find("obs_disabled_test."), std::string::npos);
}

TEST(ObsDisabledTest, ScopedTimerNestsWithoutCollisions) {
  // __COUNTER__ must keep sibling and nested declarations distinct.
  CKR_OBS_SCOPED_TIMER("x");
  CKR_OBS_SCOPED_TIMER("y");
  {
    CKR_OBS_SCOPED_TIMER("z");
  }
  SUCCEED();
}

// ---------------------------------------------------------------------
// Ranker bit-identity. The fingerprint folds every ranked annotation —
// key, span, and the exact score bits — of a fixed document set. Flat
// and legacy paths must agree in-process; across builds, check_all.sh
// compares the fingerprint this test writes (CKR_RANK_FINGERPRINT_FILE)
// between the obs-enabled and obs-disabled trees.

uint64_t Fnv1a(uint64_t h, const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t FingerprintRanking(const std::vector<RankedAnnotation>& ranked,
                            uint64_t h) {
  for (const RankedAnnotation& a : ranked) {
    h = Fnv1a(h, a.key.data(), a.key.size());
    uint64_t begin = a.begin, end = a.end;
    h = Fnv1a(h, &begin, sizeof(begin));
    h = Fnv1a(h, &end, sizeof(end));
    uint64_t score_bits = 0;
    static_assert(sizeof(score_bits) == sizeof(a.score));
    std::memcpy(&score_bits, &a.score, sizeof(score_bits));
    h = Fnv1a(h, &score_bits, sizeof(score_bits));
  }
  return h;
}

TEST(ObsDisabledTest, RankerOutputFingerprint) {
  ContextualRankerOptions options;
  options.pipeline = PipelineConfig::SmallForTests();
  auto ranker_or = ContextualRanker::Train(options);
  ASSERT_TRUE(ranker_or.ok()) << ranker_or.status().ToString();
  const ContextualRanker& ranker = **ranker_or;

  DocGenerator gen(ranker.pipeline().world());
  std::vector<std::string> docs;
  for (DocId id = 810000; id < 810020; ++id) {
    docs.push_back(gen.Generate(Document::Kind::kNews, id).text);
  }

  uint64_t flat_fp = 14695981039346656037ull;
  uint64_t legacy_fp = flat_fp;
  size_t nonempty = 0;
  const RuntimeRanker& runtime = ranker.runtime();
  for (const std::string& doc : docs) {
    auto flat = runtime.ProcessDocument(doc);
    auto legacy = runtime.ProcessDocumentLegacy(doc);
    flat_fp = FingerprintRanking(flat, flat_fp);
    legacy_fp = FingerprintRanking(legacy, legacy_fp);
    if (!flat.empty()) ++nonempty;
  }
  EXPECT_EQ(flat_fp, legacy_fp);
  EXPECT_GT(nonempty, docs.size() / 2);  // Not vacuous.

  // Fold the block-index evaluators' top-50 output into the same
  // fingerprint: the cross-build diff then also proves the block postings
  // build and the pruned MaxScore / Block-Max-WAND paths are untouched by
  // observability (every obs hook they emit must be behavior-free).
  const InvertedIndex& index = ranker.pipeline().index();
  size_t block_hits = 0;
  for (const QueryEntry& q : ranker.pipeline().query_log().entries()) {
    for (QueryEvaluator evaluator :
         {QueryEvaluator::kExhaustive, QueryEvaluator::kMaxScore,
          QueryEvaluator::kBlockMaxWand}) {
      const auto hits = index.Search(q.text, 50, Bm25Params{}, evaluator);
      block_hits += hits.size();
      for (const SearchResult& r : hits) {
        uint64_t doc = r.doc;
        flat_fp = Fnv1a(flat_fp, &doc, sizeof(doc));
        uint64_t score_bits = 0;
        std::memcpy(&score_bits, &r.score, sizeof(score_bits));
        flat_fp = Fnv1a(flat_fp, &score_bits, sizeof(score_bits));
      }
    }
  }
  EXPECT_GT(block_hits, 0u);  // Not vacuous either.

  RecordProperty("rank_fingerprint", std::to_string(flat_fp));
  if (const char* path = std::getenv("CKR_RANK_FINGERPRINT_FILE")) {
    std::ofstream out(path);
    out << flat_fp << "\n";
    ASSERT_TRUE(out.good()) << "cannot write fingerprint to " << path;
  }
}

}  // namespace
}  // namespace ckr
